package eval

import (
	"context"
	"fmt"
	"io"
	"sync"
	"text/tabwriter"
	"time"

	"github.com/uteda/gmap/internal/core"
	"github.com/uteda/gmap/internal/runner"
	"github.com/uteda/gmap/internal/stats"
	"github.com/uteda/gmap/internal/synth"
	"github.com/uteda/gmap/internal/workloads"
)

// AblationVariant is one generator configuration in the ablation study.
type AblationVariant struct {
	Name string
	Abl  synth.Ablation
}

// AblationVariants returns the study's generator variants: the full
// generator, each mechanism removed in isolation, and the bare paper
// algorithm with every extension removed.
func AblationVariants() []AblationVariant {
	return []AblationVariant{
		{Name: "full", Abl: synth.Ablation{}},
		{Name: "-windows", Abl: synth.Ablation{NoWindows: true}},
		{Name: "-templates", Abl: synth.Ablation{NoTemplates: true}},
		{Name: "-runlengths", Abl: synth.Ablation{NoRunLengths: true}},
		{Name: "-reuse", Abl: synth.Ablation{NoReuse: true}},
		{Name: "bare-alg1", Abl: synth.Ablation{NoWindows: true, NoTemplates: true, NoRunLengths: true}},
	}
}

// AblationRow is one benchmark's L1/L2 miss-rate error (percentage
// points, default configuration) under each generator variant.
type AblationRow struct {
	Benchmark string
	// L1Err and L2Err are parallel to AblationVariants().
	L1Err []float64
	L2Err []float64
}

// AblationResult carries the study.
type AblationResult struct {
	Variants []string
	Rows     []AblationRow
	// AvgL1 and AvgL2 are per-variant averages over benchmarks.
	AvgL1, AvgL2 []float64
	Elapsed      time.Duration
	// Exec summarizes the execution engine's work for the study.
	Exec runner.Stats
}

// ablSample is one configuration's L1/L2 miss-rate pair, for either the
// original stream or one variant's proxy.
type ablSample struct {
	L1 float64 `json:"l1"`
	L2 float64 `json:"l2"`
}

// variantCache builds each (benchmark, variant) proxy workload at most
// once, on the first job that needs it.
type variantCache struct {
	o  *Options
	wl *workloadCache
	mu sync.Mutex
	m  map[string]*variantEntry
}

type variantEntry struct {
	once sync.Once
	w    *core.Workload
	err  error
}

func (c *variantCache) get(benchmark string, v AblationVariant) (*core.Workload, error) {
	key := benchmark + "\x00" + v.Name
	c.mu.Lock()
	e := c.m[key]
	if e == nil {
		e = &variantEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		base, err := c.wl.get(benchmark)
		if err != nil {
			e.err = err
			return
		}
		proxy, err := synth.Generate(base.Profile, synth.Options{
			Seed: c.o.Seed, ScaleFactor: c.o.ScaleFactor, Ablation: v.Abl,
		})
		if err != nil {
			e.err = fmt.Errorf("eval ablation %s/%s: %w", benchmark, v.Name, err)
			return
		}
		w := *base
		w.Proxy = proxy
		e.w = &w
	})
	return e.w, e.err
}

// Ablation measures how much each beyond-paper generation mechanism
// (footprint windows, per-cluster templates, stride run lengths, reuse
// replay) contributes to clone accuracy, by disabling them one at a time
// (DESIGN.md §5). The original side is variant-independent and simulated
// once per configuration; originals and every variant's proxies all run
// as independent execution-engine jobs.
func (o *Options) Ablation() (*AblationResult, error) {
	o.fillDefaults()
	start := time.Now()
	variants := AblationVariants()
	res := &AblationResult{
		AvgL1: make([]float64, len(variants)),
		AvgL2: make([]float64, len(variants)),
	}
	for _, v := range variants {
		res.Variants = append(res.Variants, v.Name)
	}
	// The study sweeps Figure 6a's 30 L1 configurations per variant. To
	// keep the cost tractable it defaults to a representative subset
	// spanning the behaviour classes (cyclic high-reuse, overlapping
	// sweeps, multi-phase, irregular) unless the caller chose benchmarks.
	benchmarks := o.Benchmarks
	if len(benchmarks) == len(workloads.Names()) {
		benchmarks = []string{"kmeans", "cp", "bp", "heartwall", "srad", "bfs"}
	}
	gens := L1Sweep(o.Cores)
	wl := o.workloads()
	vc := &variantCache{o: o, wl: wl, m: make(map[string]*variantEntry)}

	// Jobs: originals first (benchmark-major), then proxies
	// (benchmark, variant, configuration), all in one pool drain.
	var jobs []runner.Job[ablSample]
	for _, name := range benchmarks {
		name := name
		for _, g := range gens {
			g := g
			jobs = append(jobs, runner.Job[ablSample]{
				Key: o.jobKey("ablation", name, "orig", g.Label),
				Run: func(ctx context.Context) (ablSample, error) {
					w, err := wl.get(name)
					if err != nil {
						return ablSample{}, err
					}
					cfg, err := g.Make()
					if err != nil {
						return ablSample{}, err
					}
					cfg.Workers = o.SimWorkers
					om, err := w.SimulateOriginal(cfg)
					if err != nil {
						return ablSample{}, err
					}
					return ablSample{L1: om.L1MissRate(), L2: om.L2MissRate()}, nil
				},
			})
		}
	}
	origJobs := len(jobs)
	for _, name := range benchmarks {
		name := name
		for _, v := range variants {
			v := v
			for _, g := range gens {
				g := g
				jobs = append(jobs, runner.Job[ablSample]{
					Key: o.jobKey("ablation", name, "variant="+v.Name, g.Label),
					Run: func(ctx context.Context) (ablSample, error) {
						w, err := vc.get(name, v)
						if err != nil {
							return ablSample{}, err
						}
						cfg, err := g.Make()
						if err != nil {
							return ablSample{}, err
						}
						cfg.Workers = o.SimWorkers
						pm, err := w.SimulateProxy(cfg)
						if err != nil {
							return ablSample{}, err
						}
						return ablSample{L1: pm.L1MissRate(), L2: pm.L2MissRate()}, nil
					},
				})
			}
		}
	}
	results, st, err := runJobs(o, "ablation", jobs)
	if err != nil {
		return nil, fmt.Errorf("eval ablation: %w", err)
	}
	if err := collectErrors("ablation", results); err != nil {
		return nil, err
	}
	for bi, name := range benchmarks {
		origL1 := make([]float64, len(gens))
		origL2 := make([]float64, len(gens))
		for gi := range gens {
			s := results[bi*len(gens)+gi].Value
			origL1[gi], origL2[gi] = s.L1, s.L2
		}
		row := AblationRow{Benchmark: name}
		for vi := range variants {
			base := origJobs + (bi*len(variants)+vi)*len(gens)
			var l1, l2 float64
			for gi := range gens {
				s := results[base+gi].Value
				l1 += stats.AbsError(origL1[gi], s.L1) / float64(len(gens))
				l2 += stats.AbsError(origL2[gi], s.L2) / float64(len(gens))
			}
			row.L1Err = append(row.L1Err, l1)
			row.L2Err = append(row.L2Err, l2)
			res.AvgL1[vi] += l1 / float64(len(benchmarks))
			res.AvgL2[vi] += l2 / float64(len(benchmarks))
		}
		res.Rows = append(res.Rows, row)
		o.logf("ablation %-12s full %5.2fpp  bare %5.2fpp (L1, 30-config sweep)",
			name, row.L1Err[0], row.L1Err[len(row.L1Err)-1])
	}
	if !o.NoTimings {
		res.Elapsed = time.Since(start)
		res.Exec = st
	}
	return res, nil
}

// WriteAblation renders the study.
func WriteAblation(w io.Writer, r *AblationResult) error {
	fmt.Fprintln(w, "== ablation: contribution of each generation mechanism ==")
	fmt.Fprintln(w, "L1 miss-rate error (percentage points), averaged over the 30-configuration L1 sweep:")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "benchmark")
	for _, v := range r.Variants {
		fmt.Fprintf(tw, "\t%s", v)
	}
	fmt.Fprintln(tw)
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s", row.Benchmark)
		for _, e := range row.L1Err {
			fmt.Fprintf(tw, "\t%.2f", e)
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprint(tw, "AVERAGE")
	for _, e := range r.AvgL1 {
		fmt.Fprintf(tw, "\t%.2f", e)
	}
	fmt.Fprintln(tw)
	fmt.Fprint(tw, "AVERAGE L2")
	for _, e := range r.AvgL2 {
		fmt.Fprintf(tw, "\t%.2f", e)
	}
	fmt.Fprintln(tw)
	if err := tw.Flush(); err != nil {
		return err
	}
	if r.Elapsed > 0 {
		fmt.Fprintf(w, "(regenerated in %v)\n", r.Elapsed.Round(time.Millisecond))
	}
	fmt.Fprintln(w)
	return nil
}
