package gpu

import (
	"github.com/uteda/gmap/internal/trace"
)

// Coalescer merges the per-thread references of a warp into cacheline
// transactions, following the compute-capability-2.x rules of CUDA C
// Programming Guide §G.4.2: the references of all active threads executing
// one memory instruction are serviced with one transaction per distinct
// 128-byte aligned segment they touch. Highly coalesced instructions (all
// 32 threads in one line) therefore cost one transaction; fully scattered
// ones cost up to 32.
type Coalescer struct {
	// LineSize is the transaction granularity in bytes; it must be a power
	// of two. The Fermi default is 128.
	LineSize uint64

	// obs, when set by AttachObs, tallies transactions per warp request.
	// Shared by value copies so BuildWarpTraces sees Coalesce's counts.
	obs *coalesceObs
}

// NewCoalescer returns a coalescer with the given line size, falling back
// to DefaultLineSize when lineSize is zero.
func NewCoalescer(lineSize uint64) Coalescer {
	if lineSize == 0 {
		lineSize = DefaultLineSize
	}
	return Coalescer{LineSize: lineSize}
}

// lineOf returns addr aligned down to the coalescing granularity.
func (c Coalescer) lineOf(addr uint64) uint64 { return addr &^ (c.LineSize - 1) }

// Coalesce merges one warp-wide instruction execution into transactions.
// addrs holds the byte address referenced by each active thread (inactive
// threads are simply omitted by the caller). The returned requests are
// ordered by first touching thread, which keeps results deterministic and
// matches the hardware's lane-ordered segment service.
func (c Coalescer) Coalesce(warpID int, pc uint64, kind trace.Kind, addrs []uint64) []trace.Request {
	if len(addrs) == 0 {
		return nil
	}
	// Warps have at most 32 lanes; a small slice scan beats a map here.
	type seg struct {
		line    uint64
		threads int
	}
	segs := make([]seg, 0, 4)
outer:
	for _, a := range addrs {
		line := c.lineOf(a)
		for i := range segs {
			if segs[i].line == line {
				segs[i].threads++
				continue outer
			}
		}
		segs = append(segs, seg{line: line, threads: 1})
	}
	reqs := make([]trace.Request, len(segs))
	for i, s := range segs {
		reqs[i] = trace.Request{
			PC:      pc,
			Addr:    s.line,
			Kind:    kind,
			WarpID:  warpID,
			Threads: s.threads,
		}
	}
	if c.obs != nil {
		c.obs.local.Observe(uint64(len(reqs)))
	}
	return reqs
}

// BuildWarpTraces converts a per-thread kernel trace into coalesced
// per-warp transaction streams. Threads of a warp advance in lockstep: at
// each step the coalescer groups the next pending access of every active
// thread that is executing the same static instruction (SIMT serializes
// divergent subsets, lowest-lane PC first) into transactions. The result
// is ordered exactly as a Fermi SM would issue it.
func (c Coalescer) BuildWarpTraces(k *trace.KernelTrace) []trace.WarpTrace {
	defer c.FlushObs()
	launch := FromKernelTrace(k)
	warps := make([]trace.WarpTrace, launch.NumWarps())
	addrBuf := make([]uint64, 0, WarpSize)
	for w := range warps {
		warps[w].WarpID = w
		warps[w].Block = launch.BlockOfWarp(w)
		lo, hi := launch.ThreadsOfWarp(w)
		if lo >= len(k.Threads) {
			continue
		}
		if hi > len(k.Threads) {
			hi = len(k.Threads)
		}
		cursors := make([]int, hi-lo)
		for {
			// Find the leader: the lowest-lane thread that still has
			// pending accesses. Its PC defines the next SIMT-issued
			// instruction subset.
			leader := -1
			for i := lo; i < hi; i++ {
				if cursors[i-lo] < len(k.Threads[i].Accesses) {
					leader = i
					break
				}
			}
			if leader < 0 {
				break
			}
			lead := k.Threads[leader].Accesses[cursors[leader-lo]]
			addrBuf = addrBuf[:0]
			kind := lead.Kind
			for i := leader; i < hi; i++ {
				cur := cursors[i-lo]
				accs := k.Threads[i].Accesses
				if cur < len(accs) && accs[cur].PC == lead.PC && accs[cur].Kind == kind {
					addrBuf = append(addrBuf, accs[cur].Addr)
					cursors[i-lo]++
				}
			}
			warps[w].Requests = append(warps[w].Requests,
				c.Coalesce(w, lead.PC, kind, addrBuf)...)
		}
	}
	return warps
}
