package dist

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func sampleBatch() *Batch {
	return &Batch{
		Lease: "lease-2-0042",
		Epoch: 2,
		Entries: []Entry{
			{Key: "aabbccddeeff001122334455", Value: json.RawMessage(`{"orig":0.25,"prox":0.24}`), ElapsedNS: 1234567},
			{Key: "ffeeddccbbaa998877665544", Value: json.RawMessage(`{"err":1.5,"orig_ns":42}`), ElapsedNS: 0},
			{Key: "k", Value: json.RawMessage(`null`), ElapsedNS: 1},
		},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	b := sampleBatch()
	data, err := EncodeBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b, got) {
		t.Errorf("round trip mismatch:\n%+v\nvs\n%+v", b, got)
	}
}

func TestBatchEmptyRoundTrip(t *testing.T) {
	b := &Batch{Lease: "l"}
	data, err := EncodeBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Lease != "l" || len(got.Entries) != 0 {
		t.Errorf("decoded %+v", got)
	}
}

func TestBatchDecodeRejects(t *testing.T) {
	good, err := EncodeBatch(sampleBatch())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"bad magic":      []byte("notthemagic~~~~~"),
		"header only":    []byte(batchMagic),
		"truncated tail": good[:len(good)-3],
		"trailing bytes": append(append([]byte(nil), good...), 0x00),
		// A count field claiming a billion entries with no data behind it
		// must reject without allocating a billion entries (0x00 lease
		// length, 0x07 epoch, then the hostile count).
		"hostile count": append([]byte(batchMagic), 0x00, 0x07, 0xff, 0xff, 0xff, 0xff, 0x03),
		// An epoch past the 2^62 cap rejects (10-byte uvarint of 2^63).
		"hostile epoch": append([]byte(batchMagic), 0x00, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01, 0x00),
		// Pre-failover v1 batches carry no fencing epoch; decoding them
		// against the current protocol would be unsound, so the old magic
		// is rejected outright.
		"v1 magic": append([]byte("gmapdist1\n"), good[len(batchMagic):]...),
	}
	for name, data := range cases {
		if _, err := DecodeBatch(data); err == nil {
			t.Errorf("%s: decoded successfully", name)
		}
	}
}

func TestBatchDecodeRejectsInvalidJSON(t *testing.T) {
	b := sampleBatch()
	data, err := EncodeBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the first value's payload bytes in place.
	idx := bytes.Index(data, []byte(`{"orig"`))
	if idx < 0 {
		t.Fatal("payload not found")
	}
	data[idx] = '}'
	if _, err := DecodeBatch(data); err == nil {
		t.Error("corrupted JSON payload decoded")
	}
}

func TestBatchEncodeRejects(t *testing.T) {
	for name, b := range map[string]*Batch{
		"oversized lease": {Lease: strings.Repeat("x", maxLeaseLen+1)},
		"empty key":       {Entries: []Entry{{Key: "", Value: json.RawMessage(`{}`)}}},
		"oversized key":   {Entries: []Entry{{Key: strings.Repeat("k", maxKeyLen+1), Value: json.RawMessage(`{}`)}}},
		"invalid JSON":    {Entries: []Entry{{Key: "k", Value: json.RawMessage(`{`)}}},
		"negative ns":     {Entries: []Entry{{Key: "k", Value: json.RawMessage(`{}`), ElapsedNS: -1}}},
	} {
		if _, err := EncodeBatch(b); err == nil {
			t.Errorf("%s: encoded successfully", name)
		}
	}
}
