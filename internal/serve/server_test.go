package serve_test

import (
	"context"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"github.com/uteda/gmap/internal/serve"
)

// TestStartEphemeralPort exercises the ":0" path both servers rely on
// for httptest-free integration tests: the kernel assigns a port, and
// Addr/Port/URL report the bound one.
func TestStartEphemeralPort(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "pong")
	})
	s, err := serve.Start(ctx, "test", "127.0.0.1:0", h)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer s.Shutdown()
	if s.Port() == 0 {
		t.Fatalf("Port() = 0 after binding :0; want kernel-assigned port")
	}
	if !strings.HasSuffix(s.Addr(), ":"+strconv.Itoa(s.Port())) {
		t.Fatalf("Addr() %q does not carry Port() %d", s.Addr(), s.Port())
	}
	resp, err := http.Get(s.URL() + "/")
	if err != nil {
		t.Fatalf("GET %s: %v", s.URL(), err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || string(body) != "pong" {
		t.Fatalf("GET body = %q, %v; want \"pong\"", body, err)
	}
}

// TestShutdownIdempotent verifies Shutdown after context cancellation is
// safe and returns the serve loop's terminal state.
func TestShutdownIdempotent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s, err := serve.Start(ctx, "test", "127.0.0.1:0", http.NewServeMux())
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	cancel()
	if err := s.Shutdown(); err != nil {
		t.Fatalf("Shutdown after cancel: %v", err)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	if _, err := http.Get(s.URL() + "/"); err == nil {
		t.Fatalf("server still serving after Shutdown")
	}
}
