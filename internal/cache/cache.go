// Package cache implements the set-associative cache model used for both
// levels of the simulated GPU memory hierarchy. It is the CMP$im-style
// component of the paper's validation simulator: demand accesses, optional
// prefetch fills with usefulness tracking, write-back/write-allocate
// semantics with dirty-victim reporting, pluggable replacement, an MSHR
// file with secondary-miss merging, and an address-interleaved banked
// wrapper for the shared L2.
package cache

import (
	"fmt"
	"math/bits"

	"github.com/uteda/gmap/internal/rng"
)

// ReplPolicy selects the replacement policy of a cache.
type ReplPolicy int

// Supported replacement policies.
const (
	LRU ReplPolicy = iota
	FIFO
	Random
)

// String returns "lru", "fifo" or "random".
func (p ReplPolicy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case Random:
		return "random"
	default:
		return "lru"
	}
}

// WritePolicy selects how stores interact with the cache.
type WritePolicy int

// Supported write policies.
const (
	// WriteBackAllocate (the default) allocates on write misses and marks
	// written lines dirty; victims report EvictedDirty for write-back.
	WriteBackAllocate WritePolicy = iota
	// WriteThroughNoAllocate propagates every store below immediately
	// (Result.WroteThrough) and does not allocate on write misses — the
	// policy of Fermi's L1 for global stores.
	WriteThroughNoAllocate
)

// String returns "write-back" or "write-through".
func (p WritePolicy) String() string {
	if p == WriteThroughNoAllocate {
		return "write-through"
	}
	return "write-back"
}

// Config describes one cache.
type Config struct {
	// SizeBytes is the total capacity; it must equal Sets*Ways*LineSize
	// with a power-of-two set count.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// LineSize is the block size in bytes (power of two).
	LineSize int
	// Policy is the replacement policy (default LRU).
	Policy ReplPolicy
	// Writes is the write policy (default write-back write-allocate).
	Writes WritePolicy
	// Seed drives the Random policy.
	Seed uint64
}

// Validate checks the configuration and returns the derived set count.
func (c Config) Validate() (sets int, err error) {
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return 0, fmt.Errorf("cache: line size %d not a positive power of two", c.LineSize)
	}
	if c.Ways <= 0 {
		return 0, fmt.Errorf("cache: associativity %d", c.Ways)
	}
	if c.SizeBytes <= 0 || c.SizeBytes%(c.Ways*c.LineSize) != 0 {
		return 0, fmt.Errorf("cache: size %d not divisible by ways*line = %d", c.SizeBytes, c.Ways*c.LineSize)
	}
	sets = c.SizeBytes / (c.Ways * c.LineSize)
	if sets&(sets-1) != 0 {
		return 0, fmt.Errorf("cache: derived set count %d not a power of two", sets)
	}
	return sets, nil
}

// String renders the geometry, e.g. "16KB 4-way 128B".
func (c Config) String() string {
	return fmt.Sprintf("%dKB %d-way %dB", c.SizeBytes/1024, c.Ways, c.LineSize)
}

// Stats accumulates cache activity.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Reads      uint64
	Writes     uint64
	Evictions  uint64
	Writebacks uint64
	// PrefetchFills counts lines installed by a prefetcher;
	// PrefetchUseful counts demand hits on such lines before eviction;
	// PrefetchLate is unused by Cache itself but aggregated by hierarchies.
	PrefetchFills  uint64
	PrefetchUseful uint64
}

// MissRate returns Misses/Accesses, or 0 for an idle cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// PrefetchAccuracy returns PrefetchUseful/PrefetchFills, or 0.
func (s Stats) PrefetchAccuracy() float64 {
	if s.PrefetchFills == 0 {
		return 0
	}
	return float64(s.PrefetchUseful) / float64(s.PrefetchFills)
}

// Add accumulates other into s (used to merge per-bank stats).
func (s *Stats) Add(other Stats) {
	s.Accesses += other.Accesses
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.Evictions += other.Evictions
	s.Writebacks += other.Writebacks
	s.PrefetchFills += other.PrefetchFills
	s.PrefetchUseful += other.PrefetchUseful
}

type line struct {
	tag      uint64
	valid    bool
	dirty    bool
	prefetch bool // installed by prefetcher, no demand hit yet
	lastUse  uint64
	filledAt uint64
}

// Result reports the outcome of one access or fill.
type Result struct {
	// Hit is true when the line was present.
	Hit bool
	// WroteThrough is true when a store must be propagated to the next
	// level immediately (write-through policy).
	WroteThrough bool
	// PrefetchHit is true when the hit consumed a prefetched line for the
	// first time.
	PrefetchHit bool
	// Evicted reports a victim was displaced; EvictedAddr is its line
	// address and EvictedDirty whether it needs writing back.
	Evicted      bool
	EvictedAddr  uint64
	EvictedDirty bool
}

// Cache is a single set-associative cache. It is not safe for concurrent
// use; the simulator drives each cache from one goroutine.
type Cache struct {
	cfg      Config
	sets     [][]line
	setMask  uint64
	lineBits uint
	tick     uint64
	rnd      *rng.Rand
	// Stats is exported for read-out; callers must not mutate it.
	Stats Stats
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	nSets, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:      cfg,
		sets:     make([][]line, nSets),
		setMask:  uint64(nSets - 1),
		lineBits: uint(bits.TrailingZeros(uint(cfg.LineSize))),
		rnd:      rng.New(cfg.Seed ^ 0xcac4e),
	}
	backing := make([]line, nSets*cfg.Ways)
	for i := range c.sets {
		c.sets[i], backing = backing[:cfg.Ways:cfg.Ways], backing[cfg.Ways:]
	}
	return c, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// LineAddr returns addr aligned down to the cache's line size.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineBits << c.lineBits }

func (c *Cache) setOf(addr uint64) []line {
	return c.sets[(addr>>c.lineBits)&c.setMask]
}

func (c *Cache) tagOf(addr uint64) uint64 {
	return addr >> c.lineBits >> uint(bits.TrailingZeros(uint(len(c.sets))))
}

// Access performs a demand access: on hit it updates recency; on miss it
// fills the line, possibly evicting a victim. write marks the line dirty.
func (c *Cache) Access(addr uint64, write bool) Result {
	c.tick++
	c.Stats.Accesses++
	if write {
		c.Stats.Writes++
	} else {
		c.Stats.Reads++
	}
	set := c.setOf(addr)
	tag := c.tagOf(addr)
	writeThrough := c.cfg.Writes == WriteThroughNoAllocate
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.Stats.Hits++
			res := Result{Hit: true}
			if set[i].prefetch {
				set[i].prefetch = false
				c.Stats.PrefetchUseful++
				res.PrefetchHit = true
			}
			set[i].lastUse = c.tick
			if write {
				if writeThrough {
					res.WroteThrough = true
					c.Stats.Writebacks++
				} else {
					set[i].dirty = true
				}
			}
			return res
		}
	}
	c.Stats.Misses++
	if write && writeThrough {
		// No-allocate: the store bypasses the cache entirely.
		c.Stats.Writebacks++
		return Result{WroteThrough: true}
	}
	res := c.install(set, tag, addr, write && !writeThrough, false)
	res.Hit = false
	return res
}

// Probe reports whether addr is present without touching recency or
// statistics. Prefetchers use it to filter redundant fills.
func (c *Cache) Probe(addr uint64) bool {
	set := c.setOf(addr)
	tag := c.tagOf(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Fill installs addr as a prefetched line. It is a no-op (returning a hit)
// when the line is already present.
func (c *Cache) Fill(addr uint64) Result {
	c.tick++
	set := c.setOf(addr)
	tag := c.tagOf(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return Result{Hit: true}
		}
	}
	c.Stats.PrefetchFills++
	res := c.install(set, tag, addr, false, true)
	res.Hit = false
	return res
}

// install places a line, choosing a victim per the replacement policy.
func (c *Cache) install(set []line, tag, addr uint64, dirty, prefetch bool) Result {
	victim := 0
	found := false
	for i := range set {
		if !set[i].valid {
			victim, found = i, true
			break
		}
	}
	if !found {
		switch c.cfg.Policy {
		case FIFO:
			oldest := set[0].filledAt
			for i := 1; i < len(set); i++ {
				if set[i].filledAt < oldest {
					oldest, victim = set[i].filledAt, i
				}
			}
		case Random:
			victim = c.rnd.Intn(len(set))
		default: // LRU
			oldest := set[0].lastUse
			for i := 1; i < len(set); i++ {
				if set[i].lastUse < oldest {
					oldest, victim = set[i].lastUse, i
				}
			}
		}
	}
	var res Result
	v := &set[victim]
	if v.valid {
		c.Stats.Evictions++
		res.Evicted = true
		res.EvictedAddr = c.reconstruct(v.tag, addr)
		res.EvictedDirty = v.dirty
		if v.dirty {
			c.Stats.Writebacks++
		}
	}
	*v = line{tag: tag, valid: true, dirty: dirty, prefetch: prefetch, lastUse: c.tick, filledAt: c.tick}
	return res
}

// reconstruct rebuilds a victim's line address from its tag and the set
// index of the incoming address (they share the set by construction).
func (c *Cache) reconstruct(tag, incoming uint64) uint64 {
	setBits := uint(bits.TrailingZeros(uint(len(c.sets))))
	setIdx := (incoming >> c.lineBits) & c.setMask
	return ((tag << setBits) | setIdx) << c.lineBits
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = line{}
		}
	}
	c.tick = 0
	c.Stats = Stats{}
}
