// Package workloads provides the 18 synthetic GPGPU benchmarks used to
// evaluate G-MAP. Each workload is a declarative kernelsim kernel whose
// launch geometry, static memory instructions, stride structure, reuse
// behaviour and control divergence are modeled on the corresponding
// benchmark from Rodinia, the NVIDIA CUDA SDK and the GPGPU-sim
// ISPASS-2009 suite, following the per-benchmark characteristics the paper
// documents (Table 1 and §5). They stand in for the original CUDA binaries,
// which G-MAP only ever observes through their memory reference streams.
package workloads

import (
	"fmt"
	"sort"

	"github.com/uteda/gmap/internal/kernelsim"
	"github.com/uteda/gmap/internal/trace"
)

// ReuseLevel classifies a workload's temporal locality the way Table 1
// does: Low is <30% reuse, Med is 30-70%, High is >70%.
type ReuseLevel int

// Reuse levels in increasing order of temporal locality.
const (
	LowReuse ReuseLevel = iota
	MedReuse
	HighReuse
)

// String returns "low", "med" or "high".
func (r ReuseLevel) String() string {
	switch r {
	case MedReuse:
		return "med"
	case HighReuse:
		return "high"
	default:
		return "low"
	}
}

// Spec describes one synthetic benchmark.
type Spec struct {
	// Name is the short benchmark name used throughout the evaluation
	// (matches the paper's figures: aes, bfs, bp, blk, cp, ...).
	Name string
	// Suite records the provenance of the modeled benchmark.
	Suite string
	// Description summarizes what the original computes and which access
	// pattern the synthetic version reproduces.
	Description string
	// Reuse is the expected temporal-locality class (Table 1).
	Reuse ReuseLevel
	// Regular indicates dominantly strided (true) versus irregular/
	// data-dependent (false) addressing; irregular workloads are the ones
	// the paper reports as hardest to clone.
	Regular bool
	// Build constructs the kernel at a given scale. Scale 1 is the default
	// evaluation size; larger scales lengthen per-thread work (more loop
	// iterations), which is how the miniaturization experiment varies
	// original trace length.
	Build func(scale int) *kernelsim.Kernel
	// App, when non-nil, constructs the benchmark's multi-kernel launch
	// sequence (Figure 1b of the paper: an application is a sequence of
	// kernels). Nil means a single launch of Build.
	App func(scale int) []*kernelsim.Kernel
}

// Trace emulates the workload at the given scale and returns its
// per-thread reference streams.
func (s Spec) Trace(scale int) (*trace.KernelTrace, error) {
	if scale < 1 {
		scale = 1
	}
	k := s.Build(scale)
	t, err := k.Emulate()
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", s.Name, err)
	}
	return t, nil
}

// AppTrace emulates the benchmark's full launch sequence.
func (s Spec) AppTrace(scale int) (*trace.Application, error) {
	if scale < 1 {
		scale = 1
	}
	kernels := []*kernelsim.Kernel{s.Build(scale)}
	if s.App != nil {
		kernels = s.App(scale)
	}
	app := &trace.Application{Name: s.Name}
	for i, k := range kernels {
		t, err := k.Emulate()
		if err != nil {
			return nil, fmt.Errorf("workloads: %s launch %d: %w", s.Name, i, err)
		}
		app.Launches = append(app.Launches, t)
	}
	return app, nil
}

var registry = map[string]Spec{}

func register(s Spec) {
	if _, dup := registry[s.Name]; dup {
		panic("workloads: duplicate benchmark " + s.Name)
	}
	registry[s.Name] = s
}

// All returns every benchmark spec sorted by name.
func All() []Spec {
	out := make([]Spec, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted benchmark names.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name
	}
	return names
}

// ByName looks up a benchmark spec.
func ByName(name string) (Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

// Table1Set returns the 10 benchmarks whose access patterns Table 1 of the
// paper characterizes, in the table's row order.
func Table1Set() []Spec {
	names := []string{"heartwall", "bp", "kmeans", "srad", "scalarprod", "cp", "blk", "lud", "lib", "fwt"}
	out := make([]Spec, 0, len(names))
	for _, n := range names {
		s, ok := registry[n]
		if !ok {
			panic("workloads: Table1 benchmark missing: " + n)
		}
		out = append(out, s)
	}
	return out
}
