package eval

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/uteda/gmap/internal/core"
	"github.com/uteda/gmap/internal/fault"
	"github.com/uteda/gmap/internal/memsim"
	"github.com/uteda/gmap/internal/obs"
	obstrace "github.com/uteda/gmap/internal/obs/trace"
	"github.com/uteda/gmap/internal/profiler"
	"github.com/uteda/gmap/internal/runner"
	"github.com/uteda/gmap/internal/stats"
	"github.com/uteda/gmap/internal/synth"
	"github.com/uteda/gmap/internal/workloads"
)

// Options parameterizes an evaluation run.
type Options struct {
	// Benchmarks to evaluate; nil means all 18.
	Benchmarks []string
	// Scale is the workload size knob (1 = default evaluation size).
	Scale int
	// ScaleFactor is the proxy miniaturization factor (paper: ~4-5).
	ScaleFactor float64
	// Seed drives profiling-independent sampling.
	Seed uint64
	// Cores overrides the simulated SM count (0 = Table 2's 15).
	Cores int
	// Progress, when non-nil, receives one line per completed benchmark
	// plus live sweep-progress lines. Delivery is serialized: concurrent
	// jobs never interleave partial lines.
	Progress func(format string, args ...interface{})

	// Workers is the parallel simulation job count: 0 uses every CPU, 1
	// forces serial execution. Every simulation point owns its seeded
	// RNG, so parallel runs produce results identical to serial ones.
	Workers int
	// SimWorkers is the per-simulation SM worker count passed to
	// memsim.Config.Workers: 0 or 1 runs each simulation point on its
	// job's goroutine, larger values run each point's SM cores on that
	// many goroutines. Like Workers it is a pure execution detail —
	// results and checkpoint identities are unchanged — so the two levels
	// share the CPU budget: when Workers is 0 (auto) and SimWorkers > 1,
	// the job pool shrinks to ~NumCPU/SimWorkers workers instead of one
	// per CPU.
	SimWorkers int
	// Checkpoint, when non-empty, streams each completed simulation
	// point to a JSONL file keyed by a stable job hash (experiment,
	// benchmark, configuration, seed, scale, scale factor, cores).
	Checkpoint string
	// Resume skips simulation points already recorded in Checkpoint, so
	// an interrupted run picks up where it stopped. A torn trailing
	// checkpoint line is salvaged and truncated (see runner).
	Resume bool
	// Retries re-executes simulation points that fail with a
	// transient-classified error (fault.IsTransient) up to this many
	// times; RetryBackoff is the base delay between attempts, doubled
	// per retry with deterministic jitter.
	Retries      int
	RetryBackoff time.Duration
	// Fsync syncs the checkpoint file after every append, hardening it
	// against machine crashes rather than just process kills.
	Fsync bool
	// Tolerate downgrades per-benchmark sweep failures from fatal to
	// skip-and-report: benchmarks with failed points are dropped from the
	// figure (logged via Progress) and the remaining rows are kept.
	// Fig8 ignores it — its per-factor averages span benchmarks, so a
	// dropped benchmark would silently skew every factor's accuracy.
	Tolerate bool
	// FS routes checkpoint I/O; nil selects the real filesystem (crash
	// tests substitute a fault injector).
	FS fault.FS
	// Inject, when non-nil, is a seeded schedule of artificial transient
	// point failures (testing and the nightly fault soak only).
	Inject *fault.Schedule
	// Context, when non-nil, cancels an in-flight evaluation (e.g. on
	// SIGINT); completed points remain in the checkpoint.
	Context context.Context
	// JobTimeout, when non-zero, bounds each simulation point's wall
	// time; a timed-out point fails that job without killing the sweep.
	JobTimeout time.Duration
	// Obs, when non-nil, collects execution instrumentation across the
	// run: runner job/checkpoint timings and utilization, plus
	// profiling/generation phase histograms ("profile.*", "synth.*").
	// Purely observational; results are identical with or without it.
	Obs *obs.Registry
	// Trace, when non-nil, records hierarchical spans of the run: one
	// "eval.<experiment>" root per sweep, per-benchmark preparation spans
	// (nesting the profiler/synth phase spans), and the execution engine's
	// worker/job/attempt spans beneath each sweep. Purely observational,
	// like Obs.
	Trace *obstrace.Tracer
	// Attr, when non-nil, enables per-π / per-PC accuracy attribution:
	// benchmarks whose figure error exceeds Attr.Threshold get a ranked
	// drill-down report (see attribution.go).
	Attr *AttrOptions
	// NoTimings omits wall-clock timings and execution statistics from
	// figure results and their rendered reports, so two runs with the
	// same options produce byte-identical report text. The serve layer
	// relies on this to content-address and cache sweep results, and the
	// distributed merge replay (internal/dist) to prove shard-equals-
	// serial byte identity. Fig8's measured speedup column is inherently
	// wall-clock, so under NoTimings it is not aggregated and renders as
	// "-"; the per-point checkpoint payloads still record the measured
	// nanoseconds.
	NoTimings bool

	// Shard, when non-nil, restricts sweep execution to the job keys it
	// selects: non-matching jobs are neither executed nor resumed and
	// their results stay zero-valued, so a sharded run's assembled
	// figures are meaningless and must be discarded. Shard is an
	// execution filter only — it never changes job keys — and exists for
	// the distributed worker (internal/dist), which cares about the
	// per-key checkpoint values it streams back, not the local report.
	Shard func(key string) bool
	// ResultSink, when non-nil, receives every executed simulation
	// point's checkpoint event (key, canonical JSON payload, execution
	// time) in completion order; a sink error aborts the sweep. See
	// runner.Options.Sink.
	ResultSink func(key string, value json.RawMessage, elapsed time.Duration) error

	// progressMu serializes Progress delivery; exec accumulates runner
	// statistics; live mirrors the newest runner event for the HTTP
	// /progress endpoint; strict arms the one-shot resume-mismatch
	// check. All are pointers so copies of an Options value share them.
	progressMu *sync.Mutex
	exec       *execAccum
	live       *liveProgress
	strict     *strictResume

	// enumKeys, when non-nil, switches runJobs into enumeration: jobs
	// are collected by key and nothing executes (see SweepKeys).
	enumKeys *keyCollector
}

// keyCollector accumulates the job keys runJobs would have executed.
type keyCollector struct {
	mu   sync.Mutex
	keys []string
}

func (c *keyCollector) add(keys []string) {
	c.mu.Lock()
	c.keys = append(c.keys, keys...)
	c.mu.Unlock()
}

// strictResume arms runner.Options.ResumeStrict for exactly the first
// resumed sweep run through an Options value. Only the first sweep can
// judge the checkpoint's universe: under "-exp all" every later sweep
// legitimately sees a checkpoint full of other experiments' keys, while
// the first sweep's keys encode experiment, seed, scale, scale factor
// and cores — so resuming with any mismatched option still fails fast
// instead of silently re-running from zero.
type strictResume struct {
	mu   sync.Mutex
	used bool
}

// take reports whether this is the first strict-eligible sweep.
func (s *strictResume) take() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.used {
		return false
	}
	s.used = true
	return true
}

// execAccum totals runner statistics across every sweep this Options
// value executes.
type execAccum struct {
	mu    sync.Mutex
	total runner.Stats
}

// DefaultOptions mirrors the paper's setup.
func DefaultOptions() Options {
	return Options{Scale: 1, ScaleFactor: 4, Seed: 1}
}

func (o *Options) fillDefaults() {
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = workloads.Names()
	}
	if o.Workers == 0 && o.SimWorkers > 1 {
		// Share the CPU budget between job-level and SM-level
		// parallelism: an auto-sized job pool assumes one job per CPU,
		// which would oversubscribe the machine SimWorkers-fold.
		if o.Workers = runtime.NumCPU() / o.SimWorkers; o.Workers < 1 {
			o.Workers = 1
		}
	}
	if o.Scale < 1 {
		o.Scale = 1
	}
	if o.ScaleFactor < 1 {
		o.ScaleFactor = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.progressMu == nil {
		o.progressMu = &sync.Mutex{}
	}
	if o.exec == nil {
		o.exec = &execAccum{}
	}
	if o.live == nil {
		o.live = &liveProgress{}
	}
	if o.strict == nil {
		o.strict = &strictResume{}
	}
}

func (o *Options) logf(format string, args ...interface{}) {
	if o.Progress == nil {
		return
	}
	o.progressMu.Lock()
	defer o.progressMu.Unlock()
	o.Progress(format, args...)
}

func (o *Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// ExecStats returns the accumulated execution summary (jobs completed,
// failed, resumed; wall and summed work time; jobs/sec) across every
// sweep run through this Options value.
func (o *Options) ExecStats() runner.Stats {
	o.fillDefaults()
	o.exec.mu.Lock()
	defer o.exec.mu.Unlock()
	return o.exec.total
}

// jobKey builds a simulation point's stable checkpoint identity. The
// configuration is digested via its sweep label, which uniquely encodes
// the swept parameters; everything else that shapes the result — the
// benchmark, seed, workload scale, miniaturization factor and core
// count — is mixed in explicitly, so runs with different options never
// share checkpoint entries.
func (o *Options) jobKey(experiment, benchmark string, parts ...string) string {
	base := []string{
		"gmap-eval/v1", experiment, benchmark,
		"seed=" + strconv.FormatUint(o.Seed, 10),
		"scale=" + strconv.Itoa(o.Scale),
		"sf=" + strconv.FormatFloat(o.ScaleFactor, 'g', -1, 64),
		"cores=" + strconv.Itoa(o.Cores),
	}
	return runner.JobKey(append(base, parts...)...)
}

// runJobs drains jobs through the execution engine with this run's
// worker count, checkpointing and progress surface, and accumulates the
// runner statistics. Job-level failures are left in the results for the
// caller to collect; the error return is cancellation only.
func runJobs[R any](o *Options, experiment string, jobs []runner.Job[R]) ([]runner.Result[R], runner.Stats, error) {
	if o.enumKeys != nil {
		// Enumeration mode: report the job universe without executing,
		// resuming, or touching the checkpoint. Callers get zero-valued
		// results; SweepKeys discards the assembled figures.
		keys := make([]string, len(jobs))
		for i := range jobs {
			keys[i] = jobs[i].Key
		}
		o.enumKeys.add(keys)
		return make([]runner.Result[R], len(jobs)), runner.Stats{}, nil
	}
	// A shard executes only the selected subset; the skipped jobs' result
	// slots stay zero-valued and are scattered back so figure assembly
	// still sees the full sweep shape.
	run := jobs
	var shardIdx []int
	if o.Shard != nil {
		run = nil
		for i := range jobs {
			if o.Shard(jobs[i].Key) {
				shardIdx = append(shardIdx, i)
				run = append(run, jobs[i])
			}
		}
	}
	lastDecile := -1
	sweepSpan := o.Trace.Root("eval."+experiment, obstrace.Int("jobs", int64(len(run))))
	defer sweepSpan.End()
	o.live.beginSweep(experiment, len(run))
	ropts := runner.Options{
		Workers:      o.Workers,
		Timeout:      o.JobTimeout,
		Retries:      o.Retries,
		RetryBackoff: o.RetryBackoff,
		Checkpoint:   o.Checkpoint,
		Resume:       o.Resume,
		ResumeStrict: o.Resume && o.strict.take(),
		Fsync:        o.Fsync,
		FS:           o.FS,
		Inject:       o.Inject,
		Obs:          o.Obs,
		Sink:         o.ResultSink,
		TraceSpan:    sweepSpan,
		OnEvent: func(e runner.Event) {
			o.live.note(e)
			if e.Kind == runner.JobFailed {
				o.logf("%s job %s failed: %v", experiment, e.Key, e.Err)
			}
			if e.Total < 20 {
				return // per-benchmark lines cover small sweeps
			}
			if decile := e.Finished() * 10 / e.Total; decile > lastDecile {
				lastDecile = decile
				o.logf("%s %s", experiment, e.ProgressLine())
			}
		},
	}
	results, st, err := runner.Run(o.ctx(), ropts, run)
	if o.Shard != nil {
		full := make([]runner.Result[R], len(jobs))
		for i := range jobs {
			full[i].Key = jobs[i].Key
		}
		for si, r := range results {
			full[shardIdx[si]] = r
		}
		results = full
	}
	o.exec.mu.Lock()
	o.exec.total = o.exec.total.Add(st)
	o.exec.mu.Unlock()
	return results, st, err
}

// SweepKeys enumerates the stable job keys of one experiment's sweeps —
// the distributed coordinator's view of the job space — without
// executing any simulation, touching checkpoints, or emitting progress.
// Keys come back sorted and deduplicated. Experiments without sweep
// jobs (table1, table2) contribute no keys: the coordinator recomputes
// those parts locally during replay. The enumeration shares jobKey with
// execution by construction, so a worker running the same Options can
// never disagree with the coordinator about job identity.
func (o Options) SweepKeys(experiment string) ([]string, error) {
	// o is a value copy: strip everything that would execute, log, or
	// persist, and detach the shared accumulators so enumeration leaves
	// the caller's Options untouched.
	o.enumKeys = &keyCollector{}
	o.Progress = nil
	o.Checkpoint = ""
	o.Resume = false
	o.Shard = nil
	o.ResultSink = nil
	o.Obs = nil
	o.Trace = nil
	o.Attr = nil
	o.progressMu, o.exec, o.live, o.strict = nil, nil, nil, nil
	o.fillDefaults()
	if err := o.enumerate(experiment); err != nil {
		return nil, err
	}
	keys := append([]string(nil), o.enumKeys.keys...)
	sort.Strings(keys)
	uniq := keys[:0]
	for i, k := range keys {
		if i == 0 || keys[i-1] != k {
			uniq = append(uniq, k)
		}
	}
	return uniq, nil
}

// enumerate drives the experiment dispatch in enumeration mode. Table
// experiments have no sweep jobs and are skipped outright rather than
// computed.
func (o *Options) enumerate(experiment string) error {
	switch experiment {
	case "table1", "table2":
		return nil
	case "all":
		for _, id := range ExperimentIDs() {
			if err := o.enumerate(id); err != nil {
				return err
			}
		}
		return nil
	default:
		return o.Run(io.Discard, experiment)
	}
}

// collectErrors summarizes job-level failures after a sweep drains.
func collectErrors[R any](experiment string, results []runner.Result[R]) error {
	var first error
	var n int
	for _, r := range results {
		if r.Err != nil {
			n++
			if first == nil {
				first = r.Err
			}
		}
	}
	if first == nil {
		return nil
	}
	return fmt.Errorf("eval %s: %d/%d jobs failed; first: %w", experiment, n, len(results), first)
}

// benchFailure returns the first failure among benchmark bi's points in
// a benchmark-major result layout (results[bi*per+gi]), or nil if all
// its points succeeded.
func benchFailure[R any](results []runner.Result[R], bi, per int) error {
	for gi := 0; gi < per; gi++ {
		if err := results[bi*per+gi].Err; err != nil {
			return err
		}
	}
	return nil
}

// prepare builds the workload pipeline for one benchmark.
func (o *Options) prepare(name string) (*core.Workload, error) {
	sp := o.Trace.Root("eval.prepare", obstrace.String("benchmark", name))
	defer sp.End()
	pcfg := profiler.DefaultConfig()
	pcfg.Obs = o.Obs
	pcfg.TraceSpan = sp
	return core.Prepare(name, o.Scale, pcfg,
		synth.Options{Seed: o.Seed, ScaleFactor: o.ScaleFactor, Obs: o.Obs, TraceSpan: sp})
}

// workloadCache builds each benchmark's pipeline at most once, on the
// first job that needs it — so a fully checkpointed benchmark is never
// re-profiled on resume.
type workloadCache struct {
	o  *Options
	mu sync.Mutex
	m  map[string]*workloadEntry
}

type workloadEntry struct {
	once sync.Once
	w    *core.Workload
	err  error
}

func (o *Options) workloads() *workloadCache {
	return &workloadCache{o: o, m: make(map[string]*workloadEntry)}
}

func (c *workloadCache) get(name string) (*core.Workload, error) {
	c.mu.Lock()
	e := c.m[name]
	if e == nil {
		e = &workloadEntry{}
		c.m[name] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.w, e.err = c.o.prepare(name) })
	return e.w, e.err
}

// BenchResult is one benchmark's row in a figure: clone error and
// correlation over the sweep.
type BenchResult struct {
	Benchmark string
	// Points is the number of validation points (configurations).
	Points int
	// Error is the mean absolute error. For rate metrics (miss rates,
	// RBL) it is measured in percentage points; for magnitude metrics
	// (latency, queue length) it is relative percent.
	Error float64
	// Correlation is Pearson's r between the original and proxy series.
	Correlation float64
}

// FigureResult aggregates one experiment.
type FigureResult struct {
	ID    string
	Title string
	// Metric names the compared quantity.
	Metric string
	Rows   []BenchResult
	// AvgError and AvgCorrelation are the headline numbers the paper
	// quotes per figure.
	AvgError       float64
	AvgCorrelation float64
	// Elapsed is the wall-clock cost of regenerating the figure.
	Elapsed time.Duration
	// Exec summarizes the execution engine's work for this figure
	// (jobs completed/failed/resumed, throughput).
	Exec runner.Stats
}

// finalize computes the aggregate row.
func (f *FigureResult) finalize() {
	var errs, corrs []float64
	for _, r := range f.Rows {
		errs = append(errs, r.Error)
		corrs = append(corrs, r.Correlation)
	}
	f.AvgError = stats.Mean(errs)
	f.AvgCorrelation = stats.Mean(corrs)
}

// rateError is the error metric for rates in [0,1]: mean absolute
// difference in percentage points.
func rateError(orig, prox []float64) float64 {
	var sum float64
	for i := range orig {
		sum += stats.AbsError(orig[i], prox[i])
	}
	if len(orig) == 0 {
		return 0
	}
	return sum / float64(len(orig))
}

// relError is the error metric for magnitudes: mean absolute relative
// percent.
func relError(orig, prox []float64) float64 {
	e, err := stats.MeanAbsPctError(orig, prox)
	if err != nil {
		return 0
	}
	return e
}

// correlation mirrors core.Comparison's flat-series convention.
func correlation(orig, prox []float64) float64 {
	r, err := stats.Pearson(orig, prox)
	if err != nil {
		return 0
	}
	if r == 0 && stats.StdDev(orig) == 0 && stats.StdDev(prox) == 0 {
		return 1
	}
	return r
}

// pointSample is one simulation point's paired measurement — the
// checkpointed unit of figure sweeps.
type pointSample struct {
	Orig float64 `json:"orig"`
	Prox float64 `json:"prox"`
}

// simPoint simulates one configuration on both sides of a workload.
// Configurations are constructed inside the job because prefetchers
// carry training state that must not leak across runs. The span riding
// ctx (the runner's attempt span) parents both simulations' spans.
func simPoint(ctx context.Context, w *core.Workload, og, pg ConfigGen, metric core.Metric, simWorkers int) (pointSample, error) {
	span := obstrace.FromContext(ctx)
	ocfg, err := og.Make()
	if err != nil {
		return pointSample{}, fmt.Errorf("eval: %s: %w", og.Label, err)
	}
	ocfg.TraceSpan = span
	ocfg.Workers = simWorkers
	om, err := w.SimulateOriginal(ocfg)
	if err != nil {
		return pointSample{}, err
	}
	pcfg, err := pg.Make()
	if err != nil {
		return pointSample{}, fmt.Errorf("eval: %s: %w", pg.Label, err)
	}
	pcfg.TraceSpan = span
	pcfg.Workers = simWorkers
	pm, err := w.SimulateProxy(pcfg)
	if err != nil {
		return pointSample{}, err
	}
	return pointSample{Orig: metric.Fn(om), Prox: metric.Fn(pm)}, nil
}

// runFigure evaluates a metric sweep across all selected benchmarks: one
// execution-engine job per (benchmark, configuration) point, results
// reassembled in sweep order so parallel runs reproduce serial output
// exactly. When proxyGens is nil the same generators drive both sides;
// Figure 6e passes a different proxy-side policy (SchedPself
// approximating GTO).
func (o *Options) runFigure(id, title string, metric core.Metric, asRate bool, gens, proxyGens []ConfigGen) (*FigureResult, error) {
	o.fillDefaults()
	if proxyGens == nil {
		proxyGens = gens
	}
	if len(proxyGens) != len(gens) {
		return nil, fmt.Errorf("eval: %d original configs vs %d proxy configs", len(gens), len(proxyGens))
	}
	start := time.Now()
	fig := &FigureResult{ID: id, Title: title, Metric: metric.Name}
	wl := o.workloads()
	jobs := make([]runner.Job[pointSample], 0, len(o.Benchmarks)*len(gens))
	for _, name := range o.Benchmarks {
		name := name
		for i := range gens {
			og, pg := gens[i], proxyGens[i]
			jobs = append(jobs, runner.Job[pointSample]{
				Key: o.jobKey(id, name, og.Label, "proxy:"+pg.Label, metric.Name),
				Run: func(ctx context.Context) (pointSample, error) {
					w, err := wl.get(name)
					if err != nil {
						return pointSample{}, err
					}
					return simPoint(ctx, w, og, pg, metric, o.SimWorkers)
				},
			})
		}
	}
	results, st, err := runJobs(o, id, jobs)
	if err != nil {
		return nil, fmt.Errorf("eval %s: %w", id, err)
	}
	if err := collectErrors(id, results); err != nil && !o.Tolerate {
		return nil, err
	}
	for bi, name := range o.Benchmarks {
		if ferr := benchFailure(results, bi, len(gens)); ferr != nil {
			// Only reachable with Tolerate: drop the benchmark's row
			// rather than fold failed (zero) points into its error stats.
			o.logf("%s %-12s skipped: %v", id, name, ferr)
			continue
		}
		orig := make([]float64, 0, len(gens))
		prox := make([]float64, 0, len(gens))
		for i := 0; i < len(gens); i++ {
			s := results[bi*len(gens)+i].Value
			orig = append(orig, s.Orig)
			prox = append(prox, s.Prox)
		}
		row := BenchResult{Benchmark: name, Points: len(gens), Correlation: correlation(orig, prox)}
		if asRate {
			row.Error = rateError(orig, prox)
		} else {
			row.Error = relError(orig, prox)
		}
		fig.Rows = append(fig.Rows, row)
		o.logf("%s %-12s error %6.2f%s corr %.3f (%d pts)",
			id, name, row.Error, errUnit(asRate), row.Correlation, row.Points)
		o.maybeAttribute(id, row, metric.Name, asRate, wl)
	}
	if len(fig.Rows) == 0 {
		return nil, fmt.Errorf("eval %s: every benchmark failed", id)
	}
	fig.finalize()
	if !o.NoTimings {
		fig.Elapsed = time.Since(start)
		fig.Exec = st
	}
	return fig, nil
}

func errUnit(asRate bool) string {
	if asRate {
		return "pp"
	}
	return "%"
}

// Fig6a regenerates Figure 6a: L1 miss-rate cloning across 30 L1
// configurations.
func (o *Options) Fig6a() (*FigureResult, error) {
	o.fillDefaults()
	return o.runFigure("fig6a", "L1 cache configurations: proxy vs original miss rate",
		core.L1MissRate, true, L1Sweep(o.Cores), nil)
}

// Fig6b regenerates Figure 6b: L2 miss-rate cloning across 30 L2
// configurations.
func (o *Options) Fig6b() (*FigureResult, error) {
	o.fillDefaults()
	return o.runFigure("fig6b", "L2 cache configurations: proxy vs original miss rate",
		core.L2MissRate, true, L2Sweep(o.Cores), nil)
}

// Fig6c regenerates Figure 6c: L1 miss rate with a many-thread-aware
// stride prefetcher across 72 configurations.
func (o *Options) Fig6c() (*FigureResult, error) {
	o.fillDefaults()
	return o.runFigure("fig6c", "L1 cache + stride prefetcher configurations",
		core.L1MissRate, true, L1PrefetchSweep(o.Cores), nil)
}

// Fig6d regenerates Figure 6d: L2 miss rate with a stream prefetcher
// across 96 configurations.
func (o *Options) Fig6d() (*FigureResult, error) {
	o.fillDefaults()
	return o.runFigure("fig6d", "L2 cache + stream prefetcher configurations",
		core.L2MissRate, true, L2PrefetchSweep(o.Cores), nil)
}

// Fig6eResult carries the two policy sub-figures of Figure 6e.
type Fig6eResult struct {
	LRR *FigureResult
	GTO *FigureResult
}

// Fig6e regenerates Figure 6e: L1 miss-rate cloning under LRR and GTO
// warp scheduling. The proxy replicates GTO via the SchedPself
// approximation of §4.5 rather than modeling the core pipeline.
func (o *Options) Fig6e() (*Fig6eResult, error) {
	o.fillDefaults()
	lrr, err := o.runFigure("fig6e/lrr", "Scheduling policy impact (LRR)",
		core.L1MissRate, true, SchedulerSweep(o.Cores, memsim.LRR), nil)
	if err != nil {
		return nil, err
	}
	// Original runs true GTO; the proxy side approximates it with PSelf.
	origGens := SchedulerSweep(o.Cores, memsim.GTO)
	proxGens := SchedulerSweep(o.Cores, memsim.PSelf)
	gto, err := o.runFigure("fig6e/gto", "Scheduling policy impact (GTO, proxy via SchedPself)",
		core.L1MissRate, true, origGens, proxGens)
	if err != nil {
		return nil, err
	}
	return &Fig6eResult{LRR: lrr, GTO: gto}, nil
}
