package gpu

import (
	"testing"

	"github.com/uteda/gmap/internal/obs"
	"github.com/uteda/gmap/internal/trace"
)

// TestCoalescerObsHistogram drives Coalesce through a fully coalesced and
// a fully scattered instruction and checks the transactions-per-request
// histogram.
func TestCoalescerObsHistogram(t *testing.T) {
	r := obs.New()
	c := NewCoalescer(128).AttachObs(r)
	// 4 threads in one line → 1 transaction.
	c.Coalesce(0, 0x10, trace.Load, []uint64{0, 4, 8, 12})
	// 4 threads in 4 lines → 4 transactions.
	c.Coalesce(0, 0x14, trace.Load, []uint64{0, 128, 256, 384})
	c.FlushObs()
	h := r.Histogram("coalesce.txns_per_request")
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	if h.Sum() != 5 {
		t.Fatalf("sum = %d, want 5 (1 + 4 transactions)", h.Sum())
	}
}

// TestCoalescerObsNilRegistry checks AttachObs(nil) keeps the zero-cost
// disabled path and FlushObs stays safe.
func TestCoalescerObsNilRegistry(t *testing.T) {
	c := NewCoalescer(128).AttachObs(nil)
	if c.obs != nil {
		t.Fatal("nil registry must not allocate obs state")
	}
	c.Coalesce(0, 0x10, trace.Load, []uint64{0})
	c.FlushObs()
}

// TestCoalescerObsBuildWarpTracesFlushes checks BuildWarpTraces publishes
// its batch without an explicit FlushObs, and that instrumentation does
// not change the built streams.
func TestCoalescerObsBuildWarpTracesFlushes(t *testing.T) {
	k := &trace.KernelTrace{Name: "t", GridDim: 1, BlockDim: 32}
	k.Threads = make([]trace.ThreadTrace, 32)
	for i := range k.Threads {
		k.Threads[i].Accesses = []trace.Access{
			{PC: 0x10, Addr: uint64(i) * 4, Kind: trace.Load},
			{PC: 0x18, Addr: uint64(i) * 256, Kind: trace.Load},
		}
	}
	r := obs.New()
	plain := NewCoalescer(128).BuildWarpTraces(k)
	instr := NewCoalescer(128).AttachObs(r).BuildWarpTraces(k)
	if len(plain) != len(instr) {
		t.Fatalf("warp count changed: %d vs %d", len(plain), len(instr))
	}
	for w := range plain {
		if len(plain[w].Requests) != len(instr[w].Requests) {
			t.Fatalf("warp %d request count changed", w)
		}
		for i := range plain[w].Requests {
			if plain[w].Requests[i] != instr[w].Requests[i] {
				t.Fatalf("warp %d request %d changed", w, i)
			}
		}
	}
	h := r.Histogram("coalesce.txns_per_request")
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2 instructions observed", h.Count())
	}
	// PC 0x10: 32 threads × 4B = one 128B line; PC 0x18: 32 distinct lines.
	if h.Sum() != 1+32 {
		t.Fatalf("sum = %d, want 33", h.Sum())
	}
}
