package runner

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"time"

	"github.com/uteda/gmap/internal/fault"
)

// A checkpoint file is JSON Lines: one entry per successfully executed
// job, appended and flushed as the job completes so that killing the
// process loses at most the line being written. Keys are stable job
// hashes (see JobKey), so a resumed run with identical parameters maps
// its jobs onto recorded results; a run with different parameters hashes
// to different keys and shares nothing.
//
// Recovery contract (DESIGN.md §9): only the final line of a checkpoint
// can be torn — every earlier line was newline-terminated and flushed
// before the next began. Resume salvages the longest valid prefix and
// truncates the torn tail, so appends never glue new entries onto
// leftover garbage. Compaction rewrites the file through a temp file and
// an atomic rename: a crash mid-compaction leaves the original intact.
type checkpointEntry struct {
	Key       string          `json:"key"`
	Value     json.RawMessage `json:"value"`
	ElapsedNS int64           `json:"elapsed_ns,omitempty"`
}

// Salvage reports what checkpoint recovery found and did.
type Salvage struct {
	// Entries is the number of distinct keys with a valid recorded value.
	Entries int
	// Lines is the total count of valid entry lines (re-recorded keys
	// count once per line; Lines > Entries measures compactable waste).
	Lines int
	// BadLines counts newline-terminated lines that did not parse —
	// mid-file corruption, never produced by a clean kill.
	BadLines int
	// TornBytes is the length of the unparsable tail after the last valid
	// line: the signature of a kill mid-flush.
	TornBytes int64
	// Truncated reports whether the torn tail was cut from the file.
	Truncated bool
	// FirstKey is the first valid key recorded in the file — a sample of
	// the checkpoint's job universe, used to make resume-mismatch errors
	// concrete.
	FirstKey string
	// Compacted reports whether the file was rewritten to one line per
	// key.
	Compacted bool
	// DivergentLines counts re-recorded keys whose payload bytes differ
	// from the previously recorded value. A single process re-running a
	// job writes the same bytes (results are deterministic), so a
	// divergent line means two different job universes were merged into
	// one file. SalvageCheckpoint keeps the later value; SalvageStrict
	// refuses the file.
	DivergentLines int
	// FirstDivergentKey names the first key whose re-recorded payload
	// differed, so strict-merge errors can be concrete.
	FirstDivergentKey string
}

// ckptScan is the parsed state of a checkpoint file.
type ckptScan struct {
	entries map[string]checkpointEntry
	order   []string // keys in first-appearance order (stable compaction)
	salvage Salvage
	endOff  int64 // offset just past the last valid line
	size    int64 // total bytes scanned
}

// scanCheckpoint reads and classifies every line of the checkpoint at
// path. A missing file yields an empty scan. Later entries for the same
// key win.
func scanCheckpoint(fsys fault.FS, path string) (*ckptScan, error) {
	sc := &ckptScan{entries: make(map[string]checkpointEntry)}
	f, err := fsys.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return sc, nil
		}
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	for {
		line, err := br.ReadBytes('\n')
		n := len(line)
		if n > 0 && line[n-1] == '\n' {
			trimmed := bytes.TrimSpace(line)
			var e checkpointEntry
			if len(trimmed) > 0 {
				if json.Unmarshal(trimmed, &e) == nil && e.Key != "" {
					if prev, seen := sc.entries[e.Key]; !seen {
						sc.order = append(sc.order, e.Key)
					} else if !bytes.Equal(prev.Value, e.Value) {
						if sc.salvage.DivergentLines == 0 {
							sc.salvage.FirstDivergentKey = e.Key
						}
						sc.salvage.DivergentLines++
					}
					sc.entries[e.Key] = e
					sc.salvage.Lines++
					sc.endOff = sc.size + int64(n)
				} else {
					sc.salvage.BadLines++
				}
			} else {
				// A blank line is valid padding, not corruption; keep it
				// inside the salvaged prefix.
				sc.endOff = sc.size + int64(n)
			}
		}
		sc.size += int64(n)
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("runner: reading checkpoint %s: %w", path, err)
		}
	}
	sc.salvage.Entries = len(sc.entries)
	sc.salvage.TornBytes = sc.size - sc.endOff
	if len(sc.order) > 0 {
		sc.salvage.FirstKey = sc.order[0]
	}
	return sc, nil
}

// values extracts the recorded raw values by key.
func (sc *ckptScan) values() map[string]json.RawMessage {
	m := make(map[string]json.RawMessage, len(sc.entries))
	for k, e := range sc.entries {
		m[k] = e.Value
	}
	return m
}

// LoadCheckpoint reads the checkpoint at path and returns recorded
// values by job key. A missing file yields an empty map. Lines that do
// not parse — typically the torn final write of a killed run — are
// skipped; later entries for the same key win. The file is not modified;
// use SalvageCheckpoint to also truncate a torn tail before appending.
func LoadCheckpoint(path string) (map[string]json.RawMessage, error) {
	sc, err := scanCheckpoint(fault.OS, path)
	if err != nil {
		return nil, err
	}
	return sc.values(), nil
}

// SalvageCheckpoint loads the checkpoint at path and makes it safe to
// append to again: a torn trailing write (the signature of a SIGKILL
// mid-flush) is cut from the file so the next appended line cannot glue
// onto leftover garbage and be lost on a later resume. fsys nil selects
// the real filesystem.
func SalvageCheckpoint(fsys fault.FS, path string) (map[string]json.RawMessage, Salvage, error) {
	if fsys == nil {
		fsys = fault.OS
	}
	sc, err := scanCheckpoint(fsys, path)
	if err != nil {
		return nil, Salvage{}, err
	}
	if sc.salvage.TornBytes > 0 {
		if err := fsys.Truncate(path, sc.endOff); err != nil {
			return nil, sc.salvage, fmt.Errorf("runner: truncating torn checkpoint tail of %s: %w", path, err)
		}
		sc.salvage.Truncated = true
	}
	return sc.values(), sc.salvage, nil
}

// compactWasteThreshold gates automatic compaction on resume: rewrite
// only when the file holds at least this many lines and more than twice
// as many lines as distinct keys — i.e. when re-recorded entries, not the
// live ones, dominate the file.
const compactWasteThreshold = 64

// CompactCheckpoint rewrites the checkpoint at path to exactly one line
// per key (the latest recorded value, keys in first-appearance order),
// through a temp file, an fsync and an atomic rename — a crash at any
// byte of the rewrite leaves the original file intact. fsys nil selects
// the real filesystem.
func CompactCheckpoint(fsys fault.FS, path string) (Salvage, error) {
	if fsys == nil {
		fsys = fault.OS
	}
	sc, err := scanCheckpoint(fsys, path)
	if err != nil {
		return Salvage{}, err
	}
	if err := compactScan(fsys, path, sc); err != nil {
		return sc.salvage, err
	}
	sc.salvage.Compacted = true
	return sc.salvage, nil
}

func compactScan(fsys fault.FS, path string, sc *ckptScan) error {
	tmp := path + ".compact.tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("runner: compacting checkpoint %s: %w", path, err)
	}
	bw := bufio.NewWriter(f)
	writeErr := func() error {
		for _, key := range sc.order {
			line, err := json.Marshal(sc.entries[key])
			if err != nil {
				return err
			}
			if _, err := bw.Write(append(line, '\n')); err != nil {
				return err
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		return f.Sync()
	}()
	if writeErr != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp) // best-effort cleanup; the compaction error wins
		return fmt.Errorf("runner: compacting checkpoint %s: %w", path, writeErr)
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("runner: compacting checkpoint %s: %w", path, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("runner: compacting checkpoint %s: %w", path, err)
	}
	return nil
}

// checkpointWriter appends entries to a checkpoint file, flushing each
// line so progress survives an abrupt kill. With fsync enabled every
// append is also synced to stable storage, extending the guarantee from
// process death to power loss. All error paths propagate: a checkpoint
// that cannot record progress fails the run loudly instead of silently
// losing entries.
type checkpointWriter struct {
	f     fault.File
	bw    *bufio.Writer
	fsync bool
}

func openCheckpoint(fsys fault.FS, path string, fsync bool) (*checkpointWriter, error) {
	if fsys == nil {
		fsys = fault.OS
	}
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &checkpointWriter{f: f, bw: bufio.NewWriter(f), fsync: fsync}, nil
}

func (c *checkpointWriter) append(key string, value any, elapsed time.Duration) error {
	raw, err := json.Marshal(value)
	if err != nil {
		return err
	}
	line, err := json.Marshal(checkpointEntry{Key: key, Value: raw, ElapsedNS: elapsed.Nanoseconds()})
	if err != nil {
		return err
	}
	if _, err := c.bw.Write(append(line, '\n')); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	if c.fsync {
		return c.f.Sync()
	}
	return nil
}

func (c *checkpointWriter) close() error {
	if err := c.bw.Flush(); err != nil {
		c.f.Close()
		return err
	}
	return c.f.Close()
}

// SalvageStrict is SalvageCheckpoint for merged ledgers: files whose
// entries arrive from many writers (the distributed coordinator's
// journal) where a re-recorded key is only legitimate when it carries
// byte-identical payload — the same job executed twice. A re-recorded
// key with a different payload means two different job universes (or a
// nondeterministic job) were merged into one file; that is never safe
// to replay, so SalvageStrict returns an error naming the first such
// key instead of silently letting the later line win. Identical
// duplicates and a torn trailing write are recovered exactly as in
// SalvageCheckpoint.
func SalvageStrict(fsys fault.FS, path string) (map[string]json.RawMessage, Salvage, error) {
	vals, sv, err := SalvageCheckpoint(fsys, path)
	if err != nil {
		return vals, sv, err
	}
	if sv.DivergentLines > 0 {
		return nil, sv, fmt.Errorf(
			"runner: checkpoint %s holds divergent payloads for job %q (%d divergent lines): refusing to merge",
			path, sv.FirstDivergentKey, sv.DivergentLines)
	}
	return vals, sv, nil
}

// A CheckpointAppender appends externally produced entries to a
// checkpoint file, one flushed line per Append, with the same torn-tail
// recovery contract as the runner's own writer: kill the process at any
// byte and SalvageCheckpoint/SalvageStrict recover every completed
// line. It is the distributed coordinator's merge path — results
// streamed back from workers become ordinary checkpoint entries that
// the existing resume machinery replays. Values must be valid JSON;
// they are compacted on write so byte-level payload comparison
// (SalvageStrict) is insensitive to wire formatting. Not safe for
// concurrent use.
type CheckpointAppender struct {
	w *checkpointWriter
}

// OpenCheckpointAppender opens path for appending. fsys nil selects the
// real filesystem; fsync extends the durability guarantee from process
// death to power loss. Callers that may be appending to a previously
// written file should salvage it first (SalvageStrict) so new lines
// cannot glue onto a torn tail.
func OpenCheckpointAppender(fsys fault.FS, path string, fsync bool) (*CheckpointAppender, error) {
	w, err := openCheckpoint(fsys, path, fsync)
	if err != nil {
		return nil, err
	}
	return &CheckpointAppender{w: w}, nil
}

// Append records one entry. elapsed is advisory (it feeds work-stealing
// heuristics, not identity): entries for the same key may legitimately
// differ in elapsed but never in value.
func (a *CheckpointAppender) Append(key string, value json.RawMessage, elapsed time.Duration) error {
	if key == "" {
		return errors.New("runner: checkpoint append with empty key")
	}
	if !json.Valid(value) {
		return fmt.Errorf("runner: checkpoint append for job %q: value is not valid JSON", key)
	}
	return a.w.append(key, value, elapsed)
}

// Close flushes and closes the underlying file.
func (a *CheckpointAppender) Close() error {
	return a.w.close()
}
