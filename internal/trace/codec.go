package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Binary trace format:
//
//	magic   "GMAPTRC1"                  8 bytes
//	name    uvarint length + bytes
//	grid    uvarint
//	block   uvarint
//	threads uvarint
//	for each thread:
//	    accesses uvarint
//	    for each access:
//	        pc    uvarint  (delta-encoded against previous pc, zig-zag)
//	        addr  uvarint  (delta-encoded against previous addr, zig-zag)
//	        kind  1 byte
//
// Delta + zig-zag encoding exploits the strong spatial regularity of GPU
// streams: most consecutive accesses by a thread differ by a small stride,
// so the encoded form is typically 3-6x smaller than raw records.

const binaryMagic = "GMAPTRC1"

var (
	// ErrBadMagic is returned when decoding data that is not a G-MAP
	// binary trace.
	ErrBadMagic = errors.New("trace: bad magic, not a G-MAP binary trace")
	// errTooLarge guards against corrupt headers requesting absurd
	// allocations.
	errTooLarge = errors.New("trace: header count exceeds sanity limit")
)

// FormatError is a decode failure that carries its position in the
// input, so a corrupt multi-gigabyte trace file reports where it broke
// instead of just that it broke. Offset is the byte offset consumed when
// the binary decoder failed (-1 when not applicable); Line is the 1-based
// line of the text decoder failure (0 when not applicable). Unwrap
// exposes the cause, so errors.Is(err, ErrBadMagic) etc. keep working.
type FormatError struct {
	Offset int64
	Line   int
	Err    error
}

func (e *FormatError) Error() string {
	// Causes from this package already carry the "trace: " prefix;
	// splice the position in after it rather than stacking prefixes.
	cause := strings.TrimPrefix(e.Err.Error(), "trace: ")
	switch {
	case e.Line > 0:
		return fmt.Sprintf("trace: line %d: %s", e.Line, cause)
	case e.Offset >= 0:
		return fmt.Sprintf("trace: offset %d: %s", e.Offset, cause)
	default:
		return e.Err.Error()
	}
}

func (e *FormatError) Unwrap() error { return e.Err }

// countReader counts bytes actually consumed from the decode stream —
// unlike wrapping the underlying reader, buffered read-ahead does not
// inflate the position.
type countReader struct {
	br *bufio.Reader
	n  int64
}

func (c *countReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.br.Read(p)
	c.n += int64(n)
	return n, err
}

const maxReasonableCount = 1 << 34

// allocHint caps eager slice preallocation from decoded header counts. A
// corrupt header can claim up to maxReasonableCount elements; growing the
// slice as elements actually parse bounds memory by the real input size
// (every element consumes at least one input byte, so a truncated stream
// errors out long before a giant claimed count materializes).
func allocHint(claimed uint64) int {
	const max = 1 << 16
	if claimed > max {
		return max
	}
	return int(claimed)
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// WriteBinary encodes k into w using the compact binary format.
func WriteBinary(w io.Writer, k *KernelTrace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(k.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(k.Name); err != nil {
		return err
	}
	for _, v := range []uint64{uint64(k.GridDim), uint64(k.BlockDim), uint64(len(k.Threads))} {
		if err := putUvarint(v); err != nil {
			return err
		}
	}
	for i := range k.Threads {
		tt := &k.Threads[i]
		if err := putUvarint(uint64(len(tt.Accesses))); err != nil {
			return err
		}
		var prevPC, prevAddr uint64
		for _, a := range tt.Accesses {
			if err := putUvarint(zigzag(int64(a.PC - prevPC))); err != nil {
				return err
			}
			if err := putUvarint(zigzag(int64(a.Addr - prevAddr))); err != nil {
				return err
			}
			if err := bw.WriteByte(byte(a.Kind)); err != nil {
				return err
			}
			prevPC, prevAddr = a.PC, a.Addr
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a kernel trace previously written by WriteBinary
// and validates it (see KernelTrace.Validate). Decode and validation
// failures are *FormatError values carrying the byte offset at which the
// stream broke.
func ReadBinary(r io.Reader) (*KernelTrace, error) {
	cr := &countReader{br: bufio.NewReader(r)}
	fail := func(err error) error { return &FormatError{Offset: cr.n, Line: 0, Err: err} }
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fail(fmt.Errorf("reading magic: %w", err))
	}
	if string(magic) != binaryMagic {
		return nil, &FormatError{Offset: 0, Err: ErrBadMagic}
	}
	readUvarint := func() (uint64, error) {
		v, err := binary.ReadUvarint(cr)
		if err != nil {
			return 0, fail(fmt.Errorf("truncated stream: %w", err))
		}
		return v, nil
	}
	nameLen, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fail(errTooLarge)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(cr, name); err != nil {
		return nil, fail(fmt.Errorf("reading name: %w", err))
	}
	grid, err := readUvarint()
	if err != nil {
		return nil, err
	}
	block, err := readUvarint()
	if err != nil {
		return nil, err
	}
	nThreads, err := readUvarint()
	if err != nil {
		return nil, err
	}
	// Every decoded quantity destined for an int must be capped before the
	// cast: a corrupt header claiming >= 2^63 would otherwise wrap to a
	// negative dimension.
	if grid > maxReasonableCount || block > maxReasonableCount || nThreads > maxReasonableCount {
		return nil, fail(errTooLarge)
	}
	k := &KernelTrace{
		Name:     string(name),
		GridDim:  int(grid),
		BlockDim: int(block),
		Threads:  make([]ThreadTrace, 0, allocHint(nThreads)),
	}
	for t := 0; t < int(nThreads); t++ {
		nAcc, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if nAcc > maxReasonableCount {
			return nil, fail(errTooLarge)
		}
		tt := ThreadTrace{
			ThreadID: t,
			Accesses: make([]Access, 0, allocHint(nAcc)),
		}
		var prevPC, prevAddr uint64
		for i := 0; i < int(nAcc); i++ {
			dpc, err := readUvarint()
			if err != nil {
				return nil, err
			}
			daddr, err := readUvarint()
			if err != nil {
				return nil, err
			}
			kind, err := cr.ReadByte()
			if err != nil {
				return nil, fail(fmt.Errorf("truncated stream: %w", err))
			}
			if kind > byte(Sync) {
				return nil, fail(fmt.Errorf("invalid access kind %d", kind))
			}
			prevPC += uint64(unzigzag(dpc))
			prevAddr += uint64(unzigzag(daddr))
			tt.Accesses = append(tt.Accesses, Access{PC: prevPC, Addr: prevAddr, Kind: Kind(kind)})
		}
		k.Threads = append(k.Threads, tt)
	}
	if err := k.Validate(); err != nil {
		return nil, fail(err)
	}
	return k, nil
}

// WriteText emits a line-oriented human-readable form:
//
//	# gmap-trace name=<name> grid=<g> block=<b>
//	T <tid>
//	LD <pc-hex> <addr-hex>
//	ST <pc-hex> <addr-hex>
//
// It is intended for inspection and interchange with external tools, not
// for large traces.
func WriteText(w io.Writer, k *KernelTrace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# gmap-trace name=%s grid=%d block=%d\n", k.Name, k.GridDim, k.BlockDim); err != nil {
		return err
	}
	for i := range k.Threads {
		if _, err := fmt.Fprintf(bw, "T %d\n", k.Threads[i].ThreadID); err != nil {
			return err
		}
		for _, a := range k.Threads[i].Accesses {
			if _, err := fmt.Fprintf(bw, "%s %x %x\n", a.Kind, a.PC, a.Addr); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadText parses the format produced by WriteText and validates the
// result (see KernelTrace.Validate). Parse failures are *FormatError
// values carrying the 1-based line number.
func ReadText(r io.Reader) (*KernelTrace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	k := &KernelTrace{}
	var cur *ThreadTrace
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "#"):
			for _, field := range strings.Fields(line[1:]) {
				if eq := strings.IndexByte(field, '='); eq > 0 {
					key, val := field[:eq], field[eq+1:]
					switch key {
					case "name":
						k.Name = val
					case "grid":
						fmt.Sscanf(val, "%d", &k.GridDim)
					case "block":
						fmt.Sscanf(val, "%d", &k.BlockDim)
					}
				}
			}
		case strings.HasPrefix(line, "T "):
			var tid int
			if _, err := fmt.Sscanf(line, "T %d", &tid); err != nil {
				return nil, &FormatError{Offset: -1, Line: lineNo, Err: fmt.Errorf("bad thread header %q", line)}
			}
			k.Threads = append(k.Threads, ThreadTrace{ThreadID: tid})
			cur = &k.Threads[len(k.Threads)-1]
		default:
			if cur == nil {
				return nil, &FormatError{Offset: -1, Line: lineNo, Err: fmt.Errorf("access before thread header")}
			}
			var kindStr string
			var pc, addr uint64
			if _, err := fmt.Sscanf(line, "%s %x %x", &kindStr, &pc, &addr); err != nil {
				return nil, &FormatError{Offset: -1, Line: lineNo, Err: fmt.Errorf("bad access %q", line)}
			}
			var kind Kind
			switch kindStr {
			case "LD":
				kind = Load
			case "ST":
				kind = Store
			case "BAR":
				kind = Sync
			default:
				return nil, &FormatError{Offset: -1, Line: lineNo, Err: fmt.Errorf("unknown kind %q", kindStr)}
			}
			cur.Accesses = append(cur.Accesses, Access{PC: pc, Addr: addr, Kind: kind})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := k.Validate(); err != nil {
		return nil, &FormatError{Offset: -1, Line: lineNo, Err: err}
	}
	return k, nil
}
