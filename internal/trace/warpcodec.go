package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary warp-trace format (coalesced streams, e.g. generated proxies):
//
//	magic   "GMAPWRP1"                  8 bytes
//	name    uvarint length + bytes
//	grid    uvarint
//	block   uvarint
//	warps   uvarint
//	for each warp:
//	    warpID   uvarint
//	    blockID  uvarint
//	    requests uvarint
//	    for each request:
//	        pc      uvarint (delta, zig-zag)
//	        addr    uvarint (delta, zig-zag)
//	        kind    1 byte
//	        threads 1 byte

const warpMagic = "GMAPWRP1"

// ErrBadWarpMagic is returned when decoding data that is not a warp-trace
// stream.
var ErrBadWarpMagic = errors.New("trace: bad magic, not a G-MAP warp trace")

// WarpFile bundles warp streams with the launch geometry they came from.
type WarpFile struct {
	Name     string
	GridDim  int
	BlockDim int
	Warps    []WarpTrace
}

// WriteWarpsBinary encodes wf into w.
func WriteWarpsBinary(w io.Writer, wf *WarpFile) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(warpMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := put(uint64(len(wf.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(wf.Name); err != nil {
		return err
	}
	for _, v := range []uint64{uint64(wf.GridDim), uint64(wf.BlockDim), uint64(len(wf.Warps))} {
		if err := put(v); err != nil {
			return err
		}
	}
	for i := range wf.Warps {
		wt := &wf.Warps[i]
		for _, v := range []uint64{uint64(wt.WarpID), uint64(wt.Block), uint64(len(wt.Requests))} {
			if err := put(v); err != nil {
				return err
			}
		}
		var prevPC, prevAddr uint64
		for _, r := range wt.Requests {
			if err := put(zigzag(int64(r.PC - prevPC))); err != nil {
				return err
			}
			if err := put(zigzag(int64(r.Addr - prevAddr))); err != nil {
				return err
			}
			if err := bw.WriteByte(byte(r.Kind)); err != nil {
				return err
			}
			threads := r.Threads
			if threads < 0 || threads > 255 {
				threads = 0
			}
			if err := bw.WriteByte(byte(threads)); err != nil {
				return err
			}
			prevPC, prevAddr = r.PC, r.Addr
		}
	}
	return bw.Flush()
}

// ReadWarpsBinary decodes a stream written by WriteWarpsBinary.
func ReadWarpsBinary(r io.Reader) (*WarpFile, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(warpMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != warpMagic {
		return nil, ErrBadWarpMagic
	}
	get := func() (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("trace: truncated warp stream: %w", err)
		}
		return v, nil
	}
	nameLen, err := get()
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, errTooLarge
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	grid, err := get()
	if err != nil {
		return nil, err
	}
	block, err := get()
	if err != nil {
		return nil, err
	}
	nWarps, err := get()
	if err != nil {
		return nil, err
	}
	// Cap every header quantity cast to int (see ReadBinary): corrupt
	// values >= 2^63 would wrap negative.
	if grid > maxReasonableCount || block > maxReasonableCount || nWarps > maxReasonableCount {
		return nil, errTooLarge
	}
	wf := &WarpFile{
		Name:     string(name),
		GridDim:  int(grid),
		BlockDim: int(block),
		Warps:    make([]WarpTrace, 0, allocHint(nWarps)),
	}
	for i := 0; i < int(nWarps); i++ {
		id, err := get()
		if err != nil {
			return nil, err
		}
		blk, err := get()
		if err != nil {
			return nil, err
		}
		nReq, err := get()
		if err != nil {
			return nil, err
		}
		if id > maxReasonableCount || blk > maxReasonableCount || nReq > maxReasonableCount {
			return nil, errTooLarge
		}
		wt := WarpTrace{
			WarpID:   int(id),
			Block:    int(blk),
			Requests: make([]Request, 0, allocHint(nReq)),
		}
		var prevPC, prevAddr uint64
		for j := 0; j < int(nReq); j++ {
			dpc, err := get()
			if err != nil {
				return nil, err
			}
			daddr, err := get()
			if err != nil {
				return nil, err
			}
			kind, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("trace: truncated warp stream: %w", err)
			}
			if kind > byte(Sync) {
				return nil, fmt.Errorf("trace: invalid request kind %d", kind)
			}
			threads, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("trace: truncated warp stream: %w", err)
			}
			prevPC += uint64(unzigzag(dpc))
			prevAddr += uint64(unzigzag(daddr))
			wt.Requests = append(wt.Requests, Request{
				PC:      prevPC,
				Addr:    prevAddr,
				Kind:    Kind(kind),
				WarpID:  int(id),
				Threads: int(threads),
			})
		}
		wf.Warps = append(wf.Warps, wt)
	}
	return wf, nil
}
