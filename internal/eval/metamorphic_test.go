package eval

import (
	"context"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"

	"github.com/uteda/gmap/internal/runner"
)

// TestInterruptedSweepResumesToIdenticalFigure is the end-to-end crash
// metamorphic test: a figure sweep cancelled mid-run (after some points
// reached the checkpoint) must, when resumed, execute only the missing
// points and render a figure byte-identical to an uninterrupted run.
func TestInterruptedSweepResumesToIdenticalFigure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.ckpt")

	// Interrupt the first run from its own progress stream: the decile
	// lines fire while jobs are still draining, so cancelling there lands
	// in the middle of the sweep.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Bool
	first := quickOpts()
	first.Workers = 1
	first.Checkpoint = path
	first.Context = ctx
	first.Progress = func(format string, args ...interface{}) {
		if fired.CompareAndSwap(false, true) {
			cancel()
		}
	}
	if _, err := first.Fig6a(); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep error = %v, want context.Canceled", err)
	}

	recorded, err := runner.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	k := len(recorded)
	total := 2 * 30 // quickOpts: nn + scalarprod, 30 L1 points each
	if k == 0 || k >= total {
		t.Fatalf("checkpoint holds %d/%d points; the cancel must land mid-sweep", k, total)
	}

	resumed := quickOpts()
	resumed.Checkpoint = path
	resumed.Resume = true
	fig, err := resumed.Fig6a()
	if err != nil {
		t.Fatal(err)
	}
	if st := resumed.ExecStats(); st.Skipped != k || st.Skipped+st.Completed != total {
		t.Errorf("resume stats = %+v, want %d skipped of %d total", st, k, total)
	}

	fresh := quickOpts()
	ref, err := fresh.Fig6a()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderFig(t, fig), renderFig(t, ref); got != want {
		t.Errorf("resumed figure differs from uninterrupted run:\nresumed:\n%s\nfresh:\n%s", got, want)
	}
}

// TestSimWorkerCountInvariance covers the -sim-workers axis: running
// each simulation point's SM cores on worker goroutines is a pure
// execution detail, so the rendered figure must be byte-identical to the
// serial engine's, for every SM worker count and combined with job-level
// parallelism.
func TestSimWorkerCountInvariance(t *testing.T) {
	cases := []struct{ workers, simWorkers int }{
		{1, 0}, {1, 2}, {1, 8}, {2, 2},
	}
	if testing.Short() {
		cases = cases[:2] // serial engine vs one parallel point suffices for -short
	}
	var want string
	for _, c := range cases {
		opts := quickOpts()
		opts.Workers = c.workers
		opts.SimWorkers = c.simWorkers
		fig, err := opts.Fig6a()
		if err != nil {
			t.Fatalf("workers=%d sim-workers=%d: %v", c.workers, c.simWorkers, err)
		}
		got := renderFig(t, fig)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d sim-workers=%d diverged:\n%s\nwant:\n%s", c.workers, c.simWorkers, got, want)
		}
	}
}

// TestWorkerCountInvariance: the figure must be identical across worker
// counts, not just serial-vs-8 — any schedule of the same deterministic
// jobs reassembles to the same rows.
func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("worker sweep is covered by TestParallelMatchesSerial in -short mode")
	}
	var want string
	for _, workers := range []int{1, 2, 3, 5} {
		opts := quickOpts()
		opts.Workers = workers
		fig, err := opts.Fig6a()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := renderFig(t, fig)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d diverged:\n%s\nwant:\n%s", workers, got, want)
		}
	}
}
