package runner

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// JobKey derives a job's stable checkpoint identity from the parts that
// define it — for a simulation point, typically the experiment id,
// benchmark, configuration digest (label), seed, scale and scale factor.
// Parts are length-prefixed before hashing so shifting content between
// adjacent parts ("l1", "32k" vs "l13", "2k") cannot collide, and the
// key is a 96-bit hex digest: short enough to read in logs, long enough
// that collisions within any realistic sweep are negligible.
func JobKey(parts ...string) string {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write([]byte(p))
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:12])
}
