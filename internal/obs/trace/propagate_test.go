package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

const testTraceID = "0123456789abcdef0123456789abcdef"

// fixedClock returns a deterministic Now stepping 1ms per call.
func fixedClock() func() time.Time {
	base := time.Unix(0, 0)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Millisecond)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: testTraceID, SpanID: 0xdeadbeef}
	h := sc.Traceparent()
	if want := "00-" + testTraceID + "-00000000deadbeef-01"; h != want {
		t.Fatalf("Traceparent = %q, want %q", h, want)
	}
	got, err := ParseTraceparent(h)
	if err != nil {
		t.Fatal(err)
	}
	if got != sc {
		t.Fatalf("round trip = %+v, want %+v", got, sc)
	}
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-" + testTraceID + "-0000000000000000-01",              // zero span id
		"00-00000000000000000000000000000000-00000000deadbeef-01", // zero trace id
		"00-" + strings.ToUpper(testTraceID) + "-00000000deadbeef-01",
		"00-" + testTraceID + "-00000000deadbee-01", // short span id
		"xx-" + testTraceID + "-00000000deadbeef-01",
		"00_" + testTraceID + "-00000000deadbeef-01",
	}
	for _, s := range bad {
		if sc, err := ParseTraceparent(s); err == nil {
			t.Errorf("ParseTraceparent(%q) = %+v, want error", s, sc)
		}
	}
}

func TestNilContextPropagation(t *testing.T) {
	var tr *Tracer
	s := tr.Root("x")
	if got := s.Context(); got.Valid() {
		t.Fatalf("nil span context = %+v, want invalid", got)
	}
	if h := s.Context().Traceparent(); h != "" {
		t.Fatalf("nil span traceparent = %q, want empty", h)
	}
	if rc := tr.RemoteChild(SpanContext{}, "y"); rc != nil {
		t.Fatalf("nil tracer RemoteChild = %v, want nil", rc)
	}
	tr.SetDefaultParent(nil) // must not panic
	tr.AdoptTraceID(testTraceID)
	if id := tr.TraceID(); id != "" {
		t.Fatalf("nil tracer TraceID = %q, want empty", id)
	}
}

func TestRemoteChildLinkage(t *testing.T) {
	coord := NewWithOptions(Options{Now: fixedClock(), TraceID: testTraceID})
	sweep := coord.Root("dist.sweep")
	lease := sweep.ChildTrack("dist.lease", String("lease", "lease-1-0001"))
	sc := lease.Context()
	if sc.TraceID != testTraceID {
		t.Fatalf("lease context trace id = %q", sc.TraceID)
	}

	// The worker side: its own tracer, parented through the wire form.
	wrk := NewWithOptions(Options{Now: fixedClock()})
	parsed, err := ParseTraceparent(sc.Traceparent())
	if err != nil {
		t.Fatal(err)
	}
	ws := wrk.RemoteChild(parsed, "dist.worker.lease")
	if got := wrk.TraceID(); got != testTraceID {
		t.Fatalf("worker tracer did not adopt trace id: %q", got)
	}
	wrk.SetDefaultParent(ws)
	job := wrk.Root("eval.fig6a")
	job.End()
	wrk.SetDefaultParent(nil)
	after := wrk.Root("other")
	after.End()
	ws.End()

	events := wrk.Events()
	byName := map[string]Event{}
	for _, e := range events {
		byName[e.Name] = e
	}
	we := byName["dist.worker.lease"]
	if we.TraceID != testTraceID || we.RemoteParent != sc.SpanID {
		t.Fatalf("worker lease event linkage = (%q, %d), want (%q, %d)",
			we.TraceID, we.RemoteParent, testTraceID, sc.SpanID)
	}
	if je := byName["eval.fig6a"]; je.Parent != we.ID {
		t.Fatalf("eval root parent = %d, want lease span %d", je.Parent, we.ID)
	}
	if oe := byName["other"]; oe.Parent != 0 {
		t.Fatalf("post-clear root parent = %d, want 0", oe.Parent)
	}

	// Local spans must not leak remote fields into exports.
	lease.End()
	sweep.End()
	for _, e := range coord.Events() {
		if e.TraceID != "" || e.RemoteParent != 0 {
			t.Fatalf("local event %q carries remote linkage %+v", e.Name, e)
		}
	}
}

func TestRemoteChildInvalidContextIsRoot(t *testing.T) {
	tr := NewWithOptions(Options{Now: fixedClock(), TraceID: testTraceID})
	s := tr.RemoteChild(SpanContext{}, "lease")
	s.End()
	e := tr.Events()[0]
	if e.TraceID != "" || e.RemoteParent != 0 || e.Parent != 0 {
		t.Fatalf("invalid-context RemoteChild event = %+v, want plain root", e)
	}
	if tr.TraceID() != testTraceID {
		t.Fatalf("tracer trace id clobbered: %q", tr.TraceID())
	}
}

func TestReadJSONLRoundTrip(t *testing.T) {
	tr := NewWithOptions(Options{Now: fixedClock(), TraceID: testTraceID})
	root := tr.Root("sweep", String("experiment", "fig6a"), Int("jobs", 30))
	child := tr.RemoteChild(SpanContext{TraceID: testTraceID, SpanID: 7}, "lease", Float("f", 1.5))
	child.SetCycles(10, 20)
	child.End()
	root.End()
	tr.Instant("marker", String("k", "v"))

	var out bytes.Buffer
	if err := tr.WriteJSONL(&out); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJSONL(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("parsed %d events, want 3", len(events))
	}

	// Re-exporting the parsed events must reproduce the original stream:
	// attribute order and remote linkage survive the round trip.
	reexport := func(events []Event) string {
		var buf bytes.Buffer
		for _, e := range events {
			je := jsonlEvent{
				ID: e.ID, Parent: e.Parent, Track: e.Track, Name: e.Name,
				Instant: e.Instant, StartUS: e.StartUS, DurUS: e.DurUS,
				TraceID: e.TraceID, RemoteParent: e.RemoteParent,
			}
			if e.HasCycles {
				sc, ec := e.StartCycle, e.EndCycle
				je.StartCycle, je.EndCycle = &sc, &ec
			}
			if len(e.Attrs) > 0 {
				args, err := argsJSON(Event{Attrs: e.Attrs})
				if err != nil {
					t.Fatal(err)
				}
				je.Attrs = args
			}
			line, err := json.Marshal(je)
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(append(line, '\n'))
		}
		return buf.String()
	}
	if got := reexport(events); got != out.String() {
		t.Fatalf("re-export differs:\n--- got ---\n%s--- want ---\n%s", got, out.String())
	}
}

func TestWriteMergedChrome(t *testing.T) {
	coord := NewWithOptions(Options{Now: fixedClock(), TraceID: testTraceID})
	sweep := coord.Root("dist.sweep")
	lease := sweep.ChildTrack("dist.lease")
	sc := lease.Context()

	wrk := NewWithOptions(Options{Now: fixedClock()})
	ws := wrk.RemoteChild(sc, "dist.worker.lease", String("worker", "w0"))
	ws.End()
	lease.End()
	sweep.End()

	var buf bytes.Buffer
	err := WriteMergedChrome(&buf, []Process{
		{Name: "coordinator", Events: coord.Events()},
		{Name: "worker w0", Events: wrk.Events()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("merged export is not valid JSON:\n%s", buf.String())
	}
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			PH   string                 `json:"ph"`
			PID  int                    `json:"pid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var metas, workers int
	for _, e := range doc.TraceEvents {
		if e.PH == "M" && e.Name == "process_name" {
			metas++
		}
		if e.Name == "dist.worker.lease" {
			workers++
			if e.PID != 2 {
				t.Errorf("worker event pid = %d, want 2", e.PID)
			}
			if e.Args["trace_id"] != testTraceID {
				t.Errorf("worker event trace_id = %v", e.Args["trace_id"])
			}
			if e.Args["remote_parent"] == nil {
				t.Errorf("worker event missing remote_parent: %v", e.Args)
			}
		}
	}
	if metas != 2 || workers != 1 {
		t.Fatalf("merged export has %d process metas, %d worker spans; want 2, 1", metas, workers)
	}
}

// TestDropCounterConcurrent hammers a tiny-capped tracer from many
// goroutines: the retained count must saturate exactly at the cap and
// every overflow must land in Dropped — no lost updates, no overshoot.
func TestDropCounterConcurrent(t *testing.T) {
	const (
		capEvents  = 64
		writers    = 8
		perWriter  = 100
		totalSpans = writers * perWriter
	)
	tr := NewWithOptions(Options{Cap: capEvents})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s := tr.Root("span", Int("writer", int64(w)), Int("i", int64(i)))
				s.End()
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Len(); got != capEvents {
		t.Errorf("Len = %d, want cap %d", got, capEvents)
	}
	if got := tr.Dropped(); got != totalSpans-capEvents {
		t.Errorf("Dropped = %d, want %d", got, totalSpans-capEvents)
	}
	// The export must still be well-formed after saturation.
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("saturated chrome export is not valid JSON")
	}
}
