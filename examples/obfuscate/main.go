// Proprietary-workload sharing (the paper's §1 motivation).
//
// An end user with a confidential application profiles it in-house,
// generates an address-obfuscated miniaturized clone, and ships only the
// clone to the GPU vendor. The vendor simulates the clone and obtains the
// same cache behaviour — without ever seeing an original address.
//
// Run with: go run ./examples/obfuscate
package main

import (
	"bytes"
	"fmt"
	"log"

	"github.com/uteda/gmap"
)

func main() {
	// ----- End-user side (inside the firewall) -----
	tr, err := gmap.BenchmarkTrace("heartwall", 1) // stand-in for the secret app
	if err != nil {
		log.Fatal(err)
	}
	profile, err := gmap.ProfileTrace(tr, gmap.DefaultProfileConfig())
	if err != nil {
		log.Fatal(err)
	}
	clone, err := gmap.Generate(profile, gmap.GenerateOptions{
		Seed:           2026,
		ScaleFactor:    4,
		Obfuscate:      true,
		ObfuscationKey: 0x5ec2e7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Verify no clone address falls in the original's address regions.
	origRegions := map[uint64]bool{}
	for i := range tr.Threads {
		for _, a := range tr.Threads[i].Accesses {
			origRegions[a.Addr>>20] = true // 1MB granules
		}
	}
	leaks, total := 0, 0
	for _, w := range clone.Warps {
		for _, r := range w.Requests {
			total++
			if origRegions[r.Addr>>20] {
				leaks++
			}
		}
	}
	fmt.Printf("clone: %d requests; %d touch any original 1MB region (%.2f%%)\n",
		total, leaks, 100*float64(leaks)/float64(total))

	// Serialize the clone — this file is all that leaves the building.
	var shipped bytes.Buffer
	if err := gmap.WriteProxy(&shipped, clone); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shipped clone: %d bytes (original trace: %d accesses)\n",
		shipped.Len(), tr.NumAccesses())

	// ----- Vendor side -----
	received, err := gmap.ReadProxy(&shipped)
	if err != nil {
		log.Fatal(err)
	}
	cfg := gmap.DefaultSimConfig()
	vendor, err := gmap.SimulateProxy(received, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth (never available to the vendor) for validation here.
	truth, err := gmap.SimulateTrace(tr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-14s %10s %10s\n", "metric", "clone", "original")
	fmt.Printf("%-14s %10.4f %10.4f\n", "L1 miss rate", vendor.L1MissRate(), truth.L1MissRate())
	fmt.Printf("%-14s %10.4f %10.4f\n", "L2 miss rate", vendor.L2MissRate(), truth.L2MissRate())
	fmt.Println("\nthe vendor sees the behaviour, not the application")
}
