// Package queue is the clone-and-simulate service's admission-controlled
// execution queue: a bounded backlog with explicit rejection (the API
// layer maps ErrFull to 429 + Retry-After, so overload surfaces as
// backpressure instead of unbounded memory growth) drained by a fixed
// worker pool under per-tenant weighted fair scheduling.
//
// Scheduling is stride-based: each tenant carries a virtual "pass" that
// advances by 1/weight per dispatched job, and the dispatcher always
// picks the backlogged tenant with the smallest pass (ties broken by
// tenant name, so dispatch order is deterministic for a deterministic
// submission order). Two backlogged tenants with weights 3:1 are served
// 3:1 whatever their submission ratio — a tenant flooding the queue
// 10:1 cannot starve the other. A tenant going idle forfeits its unused
// share: on re-activation its pass is advanced to the queue's current
// virtual time, so saved-up credit cannot be burst later.
package queue

import (
	"context"
	"errors"
	"sync"
	"time"

	"github.com/uteda/gmap/internal/obs"
)

// Submission errors. ErrFull is the backpressure signal: the caller
// should retry later (HTTP 429 + Retry-After at the API layer).
var (
	ErrFull      = errors.New("queue: backlog full")
	ErrClosed    = errors.New("queue: closed")
	ErrDuplicate = errors.New("queue: job id already queued or running")
)

// Job is one admitted unit of work. Run is invoked on a worker goroutine
// with a context that is cancelled when the job is cancelled or the
// queue shuts down; Run owns all result reporting (the queue never sees
// job outcomes).
type Job struct {
	ID     string
	Tenant string
	Run    func(ctx context.Context)
}

// Options configures a queue.
type Options struct {
	// Workers is the number of jobs executing concurrently; <= 0 means 1.
	Workers int
	// Depth bounds the admitted-but-not-yet-running backlog; a Submit
	// beyond it returns ErrFull. <= 0 means 64.
	Depth int
	// Weights assigns per-tenant scheduling weights; absent or
	// non-positive entries default to 1.
	Weights map[string]int
	// Obs, when non-nil, records queue instrumentation: depth/running
	// gauges, admission/rejection/completion counters and per-tenant
	// job counts and service-time histograms.
	Obs *obs.Registry
}

type entry struct {
	job      Job
	canceled bool
	cancel   context.CancelFunc // set while running
}

type tenantState struct {
	weight float64
	pass   float64
	fifo   []*entry
}

// Queue is an admission-controlled, weighted-fair job queue.
type Queue struct {
	opts    Options
	workers int
	depth   int

	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenantState
	byID    map[string]*entry
	queued  int
	running int
	vtime   float64
	closed  bool
	started bool
	wg      sync.WaitGroup
}

// New builds a queue; call Start to begin draining it.
func New(opts Options) *Queue {
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	depth := opts.Depth
	if depth <= 0 {
		depth = 64
	}
	q := &Queue{
		opts:    opts,
		workers: workers,
		depth:   depth,
		tenants: make(map[string]*tenantState),
		byID:    make(map[string]*entry),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Start launches the worker pool. Workers exit — after finishing their
// current job — once ctx is cancelled; running jobs see their own
// contexts cancelled at the same moment.
func (q *Queue) Start(ctx context.Context) {
	q.mu.Lock()
	if q.started {
		q.mu.Unlock()
		return
	}
	q.started = true
	q.mu.Unlock()
	for i := 0; i < q.workers; i++ {
		q.wg.Add(1)
		go q.worker(ctx)
	}
	go func() {
		<-ctx.Done()
		q.mu.Lock()
		q.closed = true
		q.cond.Broadcast()
		q.mu.Unlock()
	}()
}

// Wait blocks until every worker has exited (queue closed via context
// cancellation and current jobs finished).
func (q *Queue) Wait() { q.wg.Wait() }

// weightOf resolves a tenant's configured weight.
func (q *Queue) weightOf(tenant string) float64 {
	if w, ok := q.opts.Weights[tenant]; ok && w > 0 {
		return float64(w)
	}
	return 1
}

// Submit admits a job into its tenant's backlog, or rejects it with
// ErrFull (backlog at Depth), ErrDuplicate (id already live) or
// ErrClosed. Admission is the only place memory grows, so a full queue
// rejects instead of buffering.
func (q *Queue) Submit(j Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if _, live := q.byID[j.ID]; live {
		return ErrDuplicate
	}
	if q.queued >= q.depth {
		q.opts.Obs.Counter("serve.queue.rejected").Inc()
		return ErrFull
	}
	t := q.tenants[j.Tenant]
	if t == nil {
		t = &tenantState{weight: q.weightOf(j.Tenant)}
		q.tenants[j.Tenant] = t
	}
	if len(t.fifo) == 0 && t.pass < q.vtime {
		// Re-activating after idleness: no banked credit.
		t.pass = q.vtime
	}
	e := &entry{job: j}
	t.fifo = append(t.fifo, e)
	q.byID[j.ID] = e
	q.queued++
	q.opts.Obs.Counter("serve.queue.admitted").Inc()
	q.opts.Obs.Gauge("serve.queue.depth").Set(int64(q.queued))
	q.cond.Signal()
	return nil
}

// Cancel cancels a queued or running job by id. A queued job never
// runs; a running job has its context cancelled and is expected to wind
// down. Returns false for ids the queue is not currently holding.
func (q *Queue) Cancel(id string) bool {
	q.mu.Lock()
	e := q.byID[id]
	if e == nil {
		q.mu.Unlock()
		return false
	}
	e.canceled = true
	delete(q.byID, id)
	var cancel context.CancelFunc
	if e.cancel != nil {
		cancel = e.cancel // running: cancel outside the lock
	} else {
		q.queued-- // queued: it will be skipped at dispatch
		q.opts.Obs.Gauge("serve.queue.depth").Set(int64(q.queued))
	}
	q.opts.Obs.Counter("serve.queue.canceled").Inc()
	q.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}

// Stats is a point-in-time queue census, used by the API layer to size
// Retry-After hints.
type Stats struct {
	Queued  int `json:"queued"`
	Running int `json:"running"`
	Workers int `json:"workers"`
	Depth   int `json:"depth"`
}

// Stats returns the current census.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return Stats{Queued: q.queued, Running: q.running, Workers: q.workers, Depth: q.depth}
}

// Accepting reports whether Submit can still admit work — false once
// the queue's context has been cancelled. Backs the service's readiness
// probe: a draining process answers /healthz but not /readyz.
func (q *Queue) Accepting() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return !q.closed
}

// pickLocked pops the next job under stride scheduling: the backlogged
// tenant with the smallest pass, ties broken by name. Cancelled heads
// are pruned without being counted. Returns nil when nothing runnable
// is queued.
func (q *Queue) pickLocked() *entry {
	var best *tenantState
	bestName := ""
	for name, t := range q.tenants {
		for len(t.fifo) > 0 && t.fifo[0].canceled {
			t.fifo = t.fifo[1:]
		}
		if len(t.fifo) == 0 {
			continue
		}
		if best == nil || t.pass < best.pass || (t.pass == best.pass && name < bestName) {
			best, bestName = t, name
		}
	}
	if best == nil {
		return nil
	}
	e := best.fifo[0]
	best.fifo = best.fifo[1:]
	q.queued--
	q.opts.Obs.Gauge("serve.queue.depth").Set(int64(q.queued))
	q.vtime = best.pass
	best.pass += 1 / best.weight
	return e
}

func (q *Queue) worker(ctx context.Context) {
	defer q.wg.Done()
	for {
		q.mu.Lock()
		var e *entry
		for {
			if q.closed {
				q.mu.Unlock()
				return
			}
			if e = q.pickLocked(); e != nil {
				break
			}
			q.cond.Wait()
		}
		jctx, cancel := context.WithCancel(ctx)
		e.cancel = cancel
		q.running++
		q.opts.Obs.Gauge("serve.queue.running").Set(int64(q.running))
		q.mu.Unlock()

		start := time.Now()
		e.job.Run(jctx)
		cancel()
		elapsed := time.Since(start)

		q.mu.Lock()
		q.running--
		q.opts.Obs.Gauge("serve.queue.running").Set(int64(q.running))
		// Remove only our own registration: a cancel followed by a
		// resubmission may have installed a fresh entry under this id.
		if cur, live := q.byID[e.job.ID]; live && cur == e {
			delete(q.byID, e.job.ID)
		}
		q.opts.Obs.Counter("serve.queue.completed").Inc()
		q.opts.Obs.Counter("serve.tenant." + e.job.Tenant + ".jobs").Inc()
		q.opts.Obs.Histogram("serve.tenant." + e.job.Tenant + ".service_ns").Observe(uint64(elapsed))
		q.mu.Unlock()
	}
}
