// Package memsim is the SIMT-aware, multi-core, multi-level cache and
// memory performance simulator that both original applications and G-MAP
// proxies are evaluated on (§5: "a validated SIMT-aware multi-core,
// multi-level cache and memory simulator ... based on CMP$im", with
// Ramulator modeling the memory system).
//
// It consumes coalesced warp-level request streams, assigns threadblocks
// to cores following Fermi's model, and drives per-core warp queues with a
// configurable scheduling policy (LRR, GTO, or the SchedPself
// approximation of §4.5). Each core issues at most one memory request per
// cycle from a ready warp; the warp is then delayed in proportion to the
// request's latency — L1 hit, L2 hit, or a full DRAM round trip through an
// MSHR-bounded miss path — closing the loop between scheduling and memory
// behaviour. Core and memory clocks are treated as 1:1.
package memsim

import (
	"fmt"

	"github.com/uteda/gmap/internal/cache"
	"github.com/uteda/gmap/internal/dram"
	"github.com/uteda/gmap/internal/obs"
	obstrace "github.com/uteda/gmap/internal/obs/trace"
	"github.com/uteda/gmap/internal/prefetch"
	"github.com/uteda/gmap/internal/rng"
	"github.com/uteda/gmap/internal/trace"
)

// SchedPolicy selects the warp scheduler.
type SchedPolicy int

// Supported warp scheduling policies.
const (
	// LRR is loose round-robin: ready warps issue in rotating order.
	LRR SchedPolicy = iota
	// GTO is greedy-then-oldest: keep issuing the current warp until it
	// stalls, then switch to the oldest ready warp.
	GTO
	// PSelf is the paper's SchedPself approximation: with probability
	// Config.SchedPself the previously scheduled warp issues again,
	// otherwise round-robin advances.
	PSelf
)

// String returns "lrr", "gto" or "pself".
func (p SchedPolicy) String() string {
	switch p {
	case GTO:
		return "gto"
	case PSelf:
		return "pself"
	default:
		return "lrr"
	}
}

// Config describes the simulated memory hierarchy.
type Config struct {
	// NumCores is the SM count (Table 2: 15).
	NumCores int
	// BlocksPerCore bounds resident threadblocks per SM (default 8).
	BlocksPerCore int
	// L1 is the per-core L1 data cache; L2 the shared cache, split into
	// L2Banks address-interleaved banks.
	L1      cache.Config
	L2      cache.Config
	L2Banks int
	// Latencies in core cycles.
	L1HitLatency uint64
	L2HitLatency uint64
	// MSHRsPerCore bounds outstanding L1 misses per core (Table 2: 64);
	// 0 means unbounded.
	MSHRsPerCore int
	// NewL1Prefetcher, when non-nil, builds one L1 prefetcher per core.
	NewL1Prefetcher func() (prefetch.Prefetcher, error)
	// L2Prefetcher, when non-nil, observes the shared L2 demand stream.
	L2Prefetcher prefetch.Prefetcher
	// DRAM configures the memory system.
	DRAM dram.Config
	// Scheduler selects the warp scheduling policy; SchedPself is the
	// repeat probability used by PSelf.
	Scheduler  SchedPolicy
	SchedPself float64
	// Seed drives stochastic scheduling decisions.
	Seed uint64
	// Obs, when non-nil, receives live instrumentation: per-core
	// warp-queue depth and MSHR occupancy series, cumulative and
	// per-launch miss-rate samples, scheduler stall reasons, L2 bank
	// conflicts and DRAM row/queue/latency activity. Observability is
	// write-only: Metrics are bit-identical whether Obs is set or nil.
	Obs *obs.Registry
	// TraceSpan, when non-nil, parents the simulation's spans: one
	// "memsim.run" child covering the whole Run with its begin/end cycles
	// recorded, plus one "memsim.epoch" child per kernel-launch window on
	// multi-launch streams. Write-only, like Obs.
	TraceSpan *obstrace.Span
}

// DefaultConfig returns the Table 2 profiled system: 15 SMs, 16KB 4-way
// 128B L1 (1-cycle hits), 1MB 8-way 8-bank 128B L2, 64 MSHRs/core, LRR
// scheduling, GDDR3 memory.
func DefaultConfig() Config {
	return Config{
		NumCores:      15,
		BlocksPerCore: 8,
		L1:            cache.Config{SizeBytes: 16 * 1024, Ways: 4, LineSize: 128},
		L2:            cache.Config{SizeBytes: 1 << 20, Ways: 8, LineSize: 128},
		L2Banks:       8,
		L1HitLatency:  1,
		L2HitLatency:  20,
		MSHRsPerCore:  64,
		DRAM:          dram.DefaultGDDR3(),
		Scheduler:     LRR,
	}
}

// Metrics aggregates one simulation run.
type Metrics struct {
	// Cycles is the simulated execution time.
	Cycles uint64
	// Requests is the number of demand requests issued.
	Requests uint64
	// L1 aggregates all cores' L1 statistics; L2 all banks'.
	L1 cache.Stats
	L2 cache.Stats
	// DRAM carries the memory-system statistics.
	DRAM dram.Stats
	// MSHRStalls counts issue slots lost to a full MSHR file.
	MSHRStalls uint64
	// PerLaunch breaks the run down by kernel launch (sequences only):
	// one entry per launch with that launch's share of the activity.
	PerLaunch []LaunchMetrics
}

// LaunchMetrics is one kernel launch's slice of a sequence run.
type LaunchMetrics struct {
	// Launch is the position in the sequence.
	Launch int
	// Cycles is the launch's wall-clock share (start of admission to full
	// retirement).
	Cycles uint64
	// Requests counts demand requests issued during the launch.
	Requests uint64
	// L1 and L2 hold the launch's cache activity deltas.
	L1 cache.Stats
	L2 cache.Stats
}

// L1MissRate is a convenience accessor.
func (m Metrics) L1MissRate() float64 { return m.L1.MissRate() }

// L2MissRate is a convenience accessor.
func (m Metrics) L2MissRate() float64 { return m.L2.MissRate() }

type warpState struct {
	requests  []trace.Request
	cursor    int
	readyAt   uint64
	waiting   bool // blocked on a DRAM completion
	atBarrier bool // parked at a bar.sync until the block converges
	block     int
}

func (w *warpState) done() bool { return w.cursor >= len(w.requests) }

type coreState struct {
	blocks    []int // block ids assigned to this core, arrival order
	nextBlock int   // index into blocks of the next non-resident block
	resident  int   // blocks currently resident (admitted, not finished)
	active    []int // warp indices currently resident, residency order
	rr        int   // round-robin pointer into active
	lastWarp  int   // warp index (global) of the last scheduled warp, -1 if none
	mshr      *cache.MSHRFile
	l1        *cache.Cache
	l1pf      prefetch.Prefetcher
}

// flight tracks one outstanding DRAM read: the L1 line it fills, the core
// whose MSHR entry it holds, and the warps blocked on it.
type flight struct {
	line  uint64
	core  int
	warps []int
}

// Simulator runs warp streams through the hierarchy. Create one per run
// with New (single kernel) or NewSequence (an application's kernel
// launches, run back to back with cache and DRAM state persisting across
// launches); it is not reusable after Run.
type Simulator struct {
	cfg        Config
	warps      []warpState
	cores      []coreState
	blockWarps [][]int
	blockRem   []int
	blockWait  []int // warps currently parked at a barrier, per block
	// epochOf[b] is the kernel launch a block belongs to; blocks of launch
	// e+1 are admitted only after every launch-e warp retired (the
	// implicit device-wide synchronization between dependent kernels).
	epochOf    []int
	epochRem   []int
	epoch      int
	l2         *cache.Banked
	l2pf       prefetch.Prefetcher
	dram       *dram.Controller
	rnd        *rng.Rand
	flights    map[uint64]*flight // DRAM request id -> flight
	lineFlight map[uint64]uint64  // (core, L1 line) key -> DRAM request id
	metrics    Metrics
	// obs carries the pre-resolved observability handles; nil when
	// disabled (see obs.go).
	obs *simObs
	// Epoch-boundary snapshots for the per-launch breakdown.
	lastSnap struct {
		cycle    uint64
		requests uint64
		l1, l2   cache.Stats
	}

	// runSpan/epochSpan are the open trace spans of the current Run;
	// both are nil (no-op) when Config.TraceSpan is unset.
	runSpan   *obstrace.Span
	epochSpan *obstrace.Span
}

// New builds a simulator over the given warp streams. Warps carry their
// threadblock in WarpTrace.Block; blocks are assigned to cores round-robin
// as in §4.5 and become resident up to BlocksPerCore at a time, with new
// blocks admitted as resident ones finish.
func New(warps []trace.WarpTrace, cfg Config) (*Simulator, error) {
	return NewSequence([][]trace.WarpTrace{warps}, cfg)
}

// NewSequence builds a simulator over an application's kernel launches.
// Launches execute in order — a launch's blocks are admitted only after
// the previous launch fully retires — while the caches and the memory
// controller keep their state, so inter-kernel locality (and pollution)
// behaves as on hardware.
func NewSequence(launches [][]trace.WarpTrace, cfg Config) (*Simulator, error) {
	if len(launches) == 0 {
		return nil, fmt.Errorf("memsim: no launches")
	}
	// Flatten: per-launch block ids are offset so they stay disjoint.
	var warps []trace.WarpTrace
	var epochs []int
	blockBase := 0
	for li, lw := range launches {
		maxBlock := -1
		for _, w := range lw {
			w.Block += blockBase
			warps = append(warps, w)
			epochs = append(epochs, li)
			if w.Block > maxBlock {
				maxBlock = w.Block
			}
		}
		if maxBlock >= blockBase {
			blockBase = maxBlock + 1
		}
	}
	return newSim(warps, epochs, len(launches), cfg)
}

func newSim(warps []trace.WarpTrace, warpEpochs []int, numEpochs int, cfg Config) (*Simulator, error) {
	if cfg.NumCores <= 0 {
		return nil, fmt.Errorf("memsim: %d cores", cfg.NumCores)
	}
	if cfg.BlocksPerCore <= 0 {
		cfg.BlocksPerCore = 8
	}
	if cfg.L1HitLatency == 0 {
		cfg.L1HitLatency = 1
	}
	if cfg.L2HitLatency == 0 {
		cfg.L2HitLatency = 20
	}
	if cfg.L2Banks <= 0 {
		cfg.L2Banks = 1
	}
	if len(warps) == 0 {
		return nil, fmt.Errorf("memsim: no warps")
	}
	s := &Simulator{
		cfg:        cfg,
		rnd:        rng.New(cfg.Seed ^ 0x51713),
		flights:    make(map[uint64]*flight),
		lineFlight: make(map[uint64]uint64),
	}
	var err error
	if s.l2, err = cache.NewBanked(cfg.L2, cfg.L2Banks); err != nil {
		return nil, err
	}
	if s.dram, err = dram.NewController(cfg.DRAM); err != nil {
		return nil, err
	}
	s.obs = newSimObs(cfg.Obs, cfg.NumCores, cfg.L2Banks)
	s.l2.AttachObs(cfg.Obs, "l2")
	s.dram.AttachObs(cfg.Obs)
	s.l2pf = cfg.L2Prefetcher
	if s.l2pf == nil {
		s.l2pf = prefetch.Nil{}
	} else {
		s.l2pf = prefetch.Instrument(s.l2pf, cfg.Obs, "prefetch.l2")
	}

	numBlocks := 0
	for i := range warps {
		if warps[i].Block < 0 {
			return nil, fmt.Errorf("memsim: warp %d has negative block", i)
		}
		if warps[i].Block+1 > numBlocks {
			numBlocks = warps[i].Block + 1
		}
	}
	s.blockRem = make([]int, numBlocks)
	s.blockWait = make([]int, numBlocks)
	s.blockWarps = make([][]int, numBlocks)
	s.epochOf = make([]int, numBlocks)
	s.epochRem = make([]int, numEpochs)
	s.warps = make([]warpState, len(warps))
	for i := range warps {
		b := warps[i].Block
		s.warps[i] = warpState{requests: warps[i].Requests, block: b}
		s.blockWarps[b] = append(s.blockWarps[b], i)
		s.blockRem[b]++
		s.epochOf[b] = warpEpochs[i]
		s.epochRem[warpEpochs[i]]++
	}

	s.cores = make([]coreState, cfg.NumCores)
	for c := range s.cores {
		core := &s.cores[c]
		core.mshr = cache.NewMSHRFile(cfg.MSHRsPerCore)
		core.lastWarp = -1
		l1cfg := cfg.L1
		l1cfg.Seed = cfg.Seed + uint64(c)
		if core.l1, err = cache.New(l1cfg); err != nil {
			return nil, err
		}
		if cfg.NewL1Prefetcher != nil {
			if core.l1pf, err = cfg.NewL1Prefetcher(); err != nil {
				return nil, err
			}
			// All cores share the prefetch.l1 counters; the per-core
			// tracking state stays private to each wrapper.
			core.l1pf = prefetch.Instrument(core.l1pf, cfg.Obs, "prefetch.l1")
		} else {
			core.l1pf = prefetch.Nil{}
		}
	}
	// Round-robin threadblock assignment (§4.5), then initial residency.
	for b := 0; b < numBlocks; b++ {
		c := b % cfg.NumCores
		s.cores[c].blocks = append(s.cores[c].blocks, b)
	}
	for c := range s.cores {
		core := &s.cores[c]
		for core.nextBlock < len(core.blocks) && core.resident < cfg.BlocksPerCore {
			before := core.nextBlock
			s.admitBlock(core)
			if core.nextBlock == before {
				break // next block belongs to a future launch
			}
		}
	}
	return s, nil
}

// admitBlock moves the core's next assigned block into residency, unless
// it belongs to a future kernel launch (epoch) that has not started yet.
// Blocks without warps (gaps in the block-id space) complete trivially and
// never occupy residency.
func (s *Simulator) admitBlock(core *coreState) {
	for core.nextBlock < len(core.blocks) {
		b := core.blocks[core.nextBlock]
		if s.epochOf[b] > s.epoch {
			return
		}
		core.nextBlock++
		if len(s.blockWarps[b]) == 0 {
			continue
		}
		core.resident++
		core.active = append(core.active, s.blockWarps[b]...)
		return
	}
}

// Run executes the simulation to completion and returns the metrics.
func (s *Simulator) Run() (Metrics, error) {
	if s.obs != nil {
		// The hierarchy's hot paths count into plain tallies; publish
		// them to the registry on every return path.
		defer func() {
			s.obs.flush()
			s.l2.FlushObs()
			s.dram.FlushObs()
		}()
	}
	var cycle uint64
	s.runSpan = s.cfg.TraceSpan.Child("memsim.run",
		obstrace.Int("warps", int64(len(s.warps))),
		obstrace.Int("cores", int64(s.cfg.NumCores)))
	if len(s.epochRem) > 1 {
		s.epochSpan = s.runSpan.Child("memsim.epoch", obstrace.Int("epoch", 0))
	}
	defer func() {
		// Close a dangling epoch span (no-progress error path) before the
		// run span; cycle holds the final simulated cycle either way.
		s.epochSpan.End()
		s.runSpan.SetCycles(0, cycle)
		s.runSpan.End()
	}()
	// Every warp retires exactly once, through compactCore; warps with no
	// memory work retire on the first pass.
	remaining := len(s.warps)
	for c := range s.cores {
		s.compactCore(c, 0, &remaining)
	}
	guard := uint64(0)
	for remaining > 0 {
		guard++
		if guard > 1<<34 {
			return s.metrics, fmt.Errorf("memsim: no forward progress (cycle %d, %d warps left)", cycle, remaining)
		}
		for _, comp := range s.dram.AdvanceTo(cycle) {
			s.complete(comp)
		}
		if s.obs != nil {
			s.sampleCycle(cycle)
		}
		issued := false
		for c := range s.cores {
			if s.issue(c, cycle) {
				issued = true
			} else if s.obs != nil {
				s.noteStall(c)
			}
		}
		for c := range s.cores {
			s.compactCore(c, cycle, &remaining)
		}
		// Advance to the next kernel launch when the current one fully
		// retires (implicit device synchronization between launches).
		for s.epoch+1 < len(s.epochRem) && s.epochRem[s.epoch] == 0 {
			s.recordLaunch(cycle)
			s.epoch++
			for c := range s.cores {
				core := &s.cores[c]
				for core.nextBlock < len(core.blocks) && core.resident < s.cfg.BlocksPerCore {
					before := core.nextBlock
					s.admitBlock(core)
					if core.nextBlock == before {
						break
					}
				}
			}
		}
		if issued {
			cycle++
			continue
		}
		next := s.nextEvent(cycle)
		if next <= cycle {
			next = cycle + 1
		}
		cycle = next
	}
	for _, comp := range s.dram.Drain() {
		s.complete(comp)
	}
	if len(s.epochRem) > 1 {
		s.recordLaunch(cycle)
	}
	s.metrics.Cycles = cycle
	for c := range s.cores {
		s.metrics.L1.Add(s.cores[c].l1.Stats)
	}
	s.metrics.L2 = s.l2.Stats()
	s.metrics.DRAM = s.dram.Stats
	return s.metrics, nil
}

// recordLaunch closes the current launch's per-epoch metric window.
func (s *Simulator) recordLaunch(cycle uint64) {
	var l1 cache.Stats
	for c := range s.cores {
		l1.Add(s.cores[c].l1.Stats)
	}
	l2 := s.l2.Stats()
	lm := LaunchMetrics{
		Launch:   s.epoch,
		Cycles:   cycle - s.lastSnap.cycle,
		Requests: s.metrics.Requests - s.lastSnap.requests,
	}
	lm.L1 = diffStats(l1, s.lastSnap.l1)
	lm.L2 = diffStats(l2, s.lastSnap.l2)
	if s.obs != nil {
		s.obs.noteLaunch(lm, cycle)
	}
	// Close this launch's epoch span over its cycle window and open the
	// next launch's (unless this was the last).
	s.epochSpan.SetCycles(s.lastSnap.cycle, cycle)
	s.epochSpan.End()
	s.epochSpan = nil
	if s.epoch+1 < len(s.epochRem) {
		s.epochSpan = s.runSpan.Child("memsim.epoch", obstrace.Int("epoch", int64(s.epoch+1)))
	}
	s.metrics.PerLaunch = append(s.metrics.PerLaunch, lm)
	s.lastSnap.cycle = cycle
	s.lastSnap.requests = s.metrics.Requests
	s.lastSnap.l1 = l1
	s.lastSnap.l2 = l2
}

// diffStats subtracts an earlier snapshot from a later one.
func diffStats(now, before cache.Stats) cache.Stats {
	return cache.Stats{
		Accesses:       now.Accesses - before.Accesses,
		Hits:           now.Hits - before.Hits,
		Misses:         now.Misses - before.Misses,
		Reads:          now.Reads - before.Reads,
		Writes:         now.Writes - before.Writes,
		Evictions:      now.Evictions - before.Evictions,
		Writebacks:     now.Writebacks - before.Writebacks,
		PrefetchFills:  now.PrefetchFills - before.PrefetchFills,
		PrefetchUseful: now.PrefetchUseful - before.PrefetchUseful,
	}
}

// complete wakes the warps blocked on a finished DRAM read and releases
// its MSHR entry.
func (s *Simulator) complete(comp dram.Completion) {
	f, ok := s.flights[comp.ID]
	if !ok {
		return // fire-and-forget traffic (writebacks, prefetches)
	}
	for _, wi := range f.warps {
		ws := &s.warps[wi]
		ws.waiting = false
		ws.readyAt = comp.Done
	}
	if s.obs != nil {
		s.obs.waiting[f.core] -= len(f.warps)
	}
	s.cores[f.core].mshr.Release(f.line)
	delete(s.lineFlight, flightKey(f.core, f.line))
	delete(s.flights, comp.ID)
}

// compactCore retires finished warps, admits follow-on blocks, and keeps
// scheduler pointers valid.
func (s *Simulator) compactCore(c int, cycle uint64, remaining *int) {
	core := &s.cores[c]
	compact := core.active[:0]
	admissions := 0
	for _, wi := range core.active {
		ws := &s.warps[wi]
		if ws.done() && !ws.waiting && ws.readyAt <= cycle {
			*remaining--
			s.blockRem[ws.block]--
			s.epochRem[s.epochOf[ws.block]]--
			if s.blockRem[ws.block] == 0 {
				core.resident--
				admissions++
			} else if s.blockWait[ws.block] >= s.blockRem[ws.block] {
				// The retiree was the last warp the barrier was waiting
				// for: release the parked ones.
				s.releaseBarrier(c, ws.block, cycle)
			}
			continue
		}
		compact = append(compact, wi)
	}
	// Admit follow-on blocks only after compaction: admitBlock appends to
	// core.active, which would otherwise race the in-place filter above.
	core.active = compact
	for i := 0; i < admissions; i++ {
		s.admitBlock(core)
	}
	if core.rr >= len(core.active) {
		core.rr = 0
	}
}

// issue tries to issue one request on core c; it reports whether the core
// consumed its issue slot.
func (s *Simulator) issue(c int, cycle uint64) bool {
	core := &s.cores[c]
	n := len(core.active)
	if n == 0 {
		return false
	}
	ready := func(wi int) bool {
		ws := &s.warps[wi]
		return !ws.done() && !ws.waiting && !ws.atBarrier && ws.readyAt <= cycle
	}
	pick := -1
	switch s.cfg.Scheduler {
	case GTO:
		// Greedy: stick with the last warp while ready; else oldest ready
		// (first in residency order).
		if core.lastWarp >= 0 {
			for i := 0; i < n; i++ {
				if core.active[i] == core.lastWarp && ready(core.active[i]) {
					pick = i
					break
				}
			}
		}
		if pick < 0 {
			for i := 0; i < n; i++ {
				if ready(core.active[i]) {
					pick = i
					break
				}
			}
		}
	case PSelf:
		if core.lastWarp >= 0 && s.rnd.Bool(s.cfg.SchedPself) {
			for i := 0; i < n; i++ {
				if core.active[i] == core.lastWarp && ready(core.active[i]) {
					pick = i
					break
				}
			}
		}
		if pick < 0 {
			for i := 1; i <= n; i++ {
				idx := (core.rr + i) % n
				if ready(core.active[idx]) {
					pick = idx
					core.rr = idx
					break
				}
			}
		}
	default: // LRR
		for i := 1; i <= n; i++ {
			idx := (core.rr + i) % n
			if ready(core.active[idx]) {
				pick = idx
				core.rr = idx
				break
			}
		}
	}
	if pick < 0 {
		return false
	}
	wi := core.active[pick]
	core.lastWarp = wi
	ws := &s.warps[wi]
	req := ws.requests[ws.cursor]
	if req.Kind == trace.Sync {
		// Threadblock barrier (§4.5): park the warp; when every live warp
		// of the block has arrived, release them all past the barrier.
		s.arriveBarrier(c, wi, cycle)
		return true
	}
	if !s.access(c, wi, req, cycle) {
		// MSHR full: the slot is lost and the warp retries later.
		s.metrics.MSHRStalls++
		if s.obs != nil {
			s.obs.nStallMSHR++
		}
		ws.readyAt = cycle + 1
		return true
	}
	ws.cursor++
	return true
}

// arriveBarrier parks warp wi at its block's barrier, releasing the whole
// block once every live warp has arrived. Warps that retire early (fewer
// barriers on their divergent path) simply stop counting toward the
// block's live population.
func (s *Simulator) arriveBarrier(c, wi int, cycle uint64) {
	ws := &s.warps[wi]
	b := ws.block
	ws.atBarrier = true
	if s.obs != nil {
		s.obs.nBarriers++
		s.obs.blocked[c]++
	}
	s.blockWait[b]++
	if s.blockWait[b] >= s.blockRem[b] {
		s.releaseBarrier(c, b, cycle)
	}
}

// releaseBarrier frees every warp parked at block b's barrier. c is the
// core block b resides on (a block is never split across cores).
func (s *Simulator) releaseBarrier(c, b int, cycle uint64) {
	for _, other := range s.blockWarps[b] {
		ow := &s.warps[other]
		if ow.atBarrier {
			ow.atBarrier = false
			ow.cursor++
			ow.readyAt = cycle + 1
			if s.obs != nil {
				s.obs.blocked[c]--
			}
		}
	}
	s.blockWait[b] = 0
}

// access sends one request through the hierarchy; it returns false when
// the request cannot be accepted (MSHR file full).
func (s *Simulator) access(c, wi int, req trace.Request, cycle uint64) bool {
	core := &s.cores[c]
	ws := &s.warps[wi]
	write := req.Kind == trace.Store
	line := core.l1.LineAddr(req.Addr)

	// Secondary miss on an in-flight line: merge into the outstanding
	// entry and wait for the same completion.
	if reqID, inflight := s.lineFlight[flightKey(c, line)]; inflight {
		core.mshr.Allocate(line)
		core.l1.Stats.Accesses++
		core.l1.Stats.Misses++
		if write {
			core.l1.Stats.Writes++
		} else {
			core.l1.Stats.Reads++
		}
		s.metrics.Requests++
		if s.obs != nil {
			s.obs.nRequests++
		}
		ws.waiting = true
		if s.obs != nil {
			s.obs.waiting[c]++
		}
		s.flights[reqID].warps = append(s.flights[reqID].warps, wi)
		return true
	}

	// Stall-before-touch: if servicing this request would need a new MSHR
	// entry and the file is full, reject it before any cache state or
	// statistic changes — a stalled request must replay identically.
	// Write-through stores never allocate an MSHR.
	wouldAllocate := !(write && core.l1.Config().Writes == cache.WriteThroughNoAllocate)
	if wouldAllocate && core.mshr.Full() && !core.l1.Probe(req.Addr) && !s.l2.Probe(req.Addr) {
		return false
	}

	res := core.l1.Access(req.Addr, write)
	s.metrics.Requests++
	if s.obs != nil {
		s.obs.requests.Inc()
	}
	s.l1Prefetch(core, req, line, !res.Hit, cycle)
	if res.WroteThrough {
		// Write-through L1: the store propagates to the L2 immediately
		// and the warp continues behind a store buffer — it is never
		// blocked on the write's completion.
		if s.obs != nil {
			s.obs.noteL2Bank(s.l2.BankOf(req.Addr), cycle)
		}
		l2res := s.l2.Access(req.Addr, true)
		if !l2res.Hit {
			if l2res.Evicted && l2res.EvictedDirty {
				s.dram.Enqueue(l2res.EvictedAddr, true, cycle)
			}
			s.dram.Enqueue(s.l2.LineAddr(req.Addr), true, cycle)
		}
		ws.readyAt = cycle + s.cfg.L1HitLatency
		return true
	}
	if res.Hit {
		ws.readyAt = cycle + s.cfg.L1HitLatency
		return true
	}
	if res.Evicted && res.EvictedDirty {
		s.l2WriteBack(res.EvictedAddr, cycle)
	}

	if s.obs != nil {
		s.obs.noteL2Bank(s.l2.BankOf(req.Addr), cycle)
	}
	l2res := s.l2.Access(req.Addr, write)
	if pf := s.l2pf.Observe(req.PC, req.WarpID, s.l2.LineAddr(req.Addr), !l2res.Hit); pf != nil {
		s.l2PrefetchFill(pf, cycle)
	}
	if l2res.Hit {
		ws.readyAt = cycle + s.cfg.L2HitLatency
		return true
	}
	if l2res.Evicted && l2res.EvictedDirty {
		s.dram.Enqueue(l2res.EvictedAddr, true, cycle)
	}

	// The pre-check above guarantees an entry is available here.
	core.mshr.Allocate(line)
	reqID := s.dram.Enqueue(s.l2.LineAddr(req.Addr), write, cycle)
	s.flights[reqID] = &flight{line: line, core: c, warps: []int{wi}}
	s.lineFlight[flightKey(c, line)] = reqID
	ws.waiting = true
	if s.obs != nil {
		s.obs.waiting[c]++
	}
	return true
}

// l1Prefetch runs the core's L1 prefetcher and installs candidates,
// fetching their data from the levels below.
func (s *Simulator) l1Prefetch(core *coreState, req trace.Request, line uint64, miss bool, cycle uint64) {
	for _, cand := range core.l1pf.Observe(req.PC, req.WarpID, line, miss) {
		if core.l1.Probe(cand) {
			continue
		}
		fill := core.l1.Fill(cand)
		if fill.Evicted && fill.EvictedDirty {
			s.l2WriteBack(fill.EvictedAddr, cycle)
		}
		l2res := s.l2.Access(cand, false)
		if !l2res.Hit {
			if l2res.Evicted && l2res.EvictedDirty {
				s.dram.Enqueue(l2res.EvictedAddr, true, cycle)
			}
			s.dram.Enqueue(s.l2.LineAddr(cand), false, cycle)
		}
	}
}

// l2PrefetchFill installs stream-prefetch candidates into the L2.
func (s *Simulator) l2PrefetchFill(cands []uint64, cycle uint64) {
	for _, cand := range cands {
		if s.l2.Probe(cand) {
			continue
		}
		fill := s.l2.Fill(cand)
		if fill.Evicted && fill.EvictedDirty {
			s.dram.Enqueue(fill.EvictedAddr, true, cycle)
		}
		s.dram.Enqueue(cand, false, cycle)
	}
}

// l2WriteBack sends an L1 dirty victim into the L2.
func (s *Simulator) l2WriteBack(addr uint64, cycle uint64) {
	res := s.l2.Access(addr, true)
	if !res.Hit && res.Evicted && res.EvictedDirty {
		s.dram.Enqueue(res.EvictedAddr, true, cycle)
	}
}

// flightKey builds the per-core in-flight line key; simulated addresses
// stay far below 2^56, so folding the core id into the top byte is safe.
func flightKey(core int, line uint64) uint64 {
	return line ^ uint64(core+1)<<56
}

// nextEvent returns the earliest future cycle at which anything can
// happen: a warp becoming ready or a DRAM completion. It is only called
// when no core could issue, which means every pending arrival is already
// enqueued — making the controller's minimal-service peek exact.
func (s *Simulator) nextEvent(cycle uint64) uint64 {
	next := ^uint64(0)
	for c := range s.cores {
		for _, wi := range s.cores[c].active {
			ws := &s.warps[wi]
			if ws.done() || ws.waiting {
				continue
			}
			if ws.readyAt > cycle && ws.readyAt < next {
				next = ws.readyAt
			}
		}
	}
	if t, ok := s.dram.NextCompletion(); ok && t < next {
		next = t
	}
	if next == ^uint64(0) {
		return cycle + 1
	}
	return next
}
