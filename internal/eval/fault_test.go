package eval

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"github.com/uteda/gmap/internal/fault"
)

// faultSeed returns the schedule seed for the fault-injection sweeps;
// GMAP_FAULT_SEED lets the nightly soak rotate schedules and replay a
// failing one.
func faultSeed(t *testing.T) uint64 {
	if v := os.Getenv("GMAP_FAULT_SEED"); v != "" {
		s, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("bad GMAP_FAULT_SEED %q: %v", v, err)
		}
		return s
	}
	return 11
}

// TestFaultInjectedSweepMatchesFaultFree is the end-to-end invariance
// acceptance check: a figure sweep peppered with seeded transient
// failures, retried within budget, renders byte-identical to a
// fault-free sweep.
func TestFaultInjectedSweepMatchesFaultFree(t *testing.T) {
	if testing.Short() {
		t.Skip("double full sweep; runs in the nightly fault-injection soak")
	}
	fresh := quickOpts()
	ref, err := fresh.Fig6a()
	if err != nil {
		t.Fatal(err)
	}

	seed := faultSeed(t)
	faulty := quickOpts()
	faulty.Workers = 4
	faulty.Inject = &fault.Schedule{Seed: seed, FailProb: 0.4, MaxFailures: 2}
	faulty.Retries = 2
	fig, err := faulty.Fig6a()
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	st := faulty.ExecStats()
	if st.Failed != 0 {
		t.Fatalf("seed %d: %d jobs failed despite full retry budget", seed, st.Failed)
	}
	if st.Retries == 0 {
		t.Fatalf("degenerate schedule (seed %d): no failures injected", seed)
	}
	if got, want := renderFig(t, fig), renderFig(t, ref); got != want {
		t.Errorf("seed %d: fault-injected figure differs from fault-free run:\ninjected:\n%s\nfresh:\n%s",
			seed, got, want)
	}
}

// TestInjectedFaultsExhaustRetryBudget: with more injected failures than
// retries the sweep fails loudly, naming the experiment and failure
// counts — never a silently truncated figure.
func TestInjectedFaultsExhaustRetryBudget(t *testing.T) {
	opts := quickOpts()
	opts.Inject = &fault.Schedule{Seed: 3, FailProb: 1, MaxFailures: 2}
	opts.Retries = 0
	_, err := opts.Fig6a()
	if err == nil {
		t.Fatal("sweep with unretried injected faults reported success")
	}
	if !strings.Contains(err.Error(), "fig6a") || !strings.Contains(err.Error(), "jobs failed") {
		t.Fatalf("error = %v, want experiment id and failure count", err)
	}
}

// TestTolerateSkipsFailingBenchmark: with Tolerate set, a benchmark
// whose points all fail is dropped with a log line and the figure is
// built from the survivors; without it the sweep fails.
func TestTolerateSkipsFailingBenchmark(t *testing.T) {
	strict := quickOpts()
	strict.Benchmarks = []string{"nn", "no-such-benchmark"}
	if _, err := strict.Fig6a(); err == nil {
		t.Fatal("sweep with an unknown benchmark reported success")
	}

	var logs []string
	tol := quickOpts()
	tol.Benchmarks = []string{"nn", "no-such-benchmark"}
	tol.Tolerate = true
	tol.Progress = func(format string, args ...interface{}) {
		logs = append(logs, fmt.Sprintf(format, args...))
	}
	fig, err := tol.Fig6a()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 1 || fig.Rows[0].Benchmark != "nn" {
		t.Fatalf("rows = %+v, want nn only", fig.Rows)
	}
	var skipped bool
	for _, l := range logs {
		if strings.Contains(l, "no-such-benchmark") && strings.Contains(l, "skipped") {
			skipped = true
		}
	}
	if !skipped {
		t.Errorf("no skip report logged; logs:\n%s", strings.Join(logs, "\n"))
	}

	// When every benchmark fails, Tolerate still cannot fabricate a
	// figure out of nothing.
	empty := quickOpts()
	empty.Benchmarks = []string{"no-such-benchmark"}
	empty.Tolerate = true
	if _, err := empty.Fig6a(); err == nil || !strings.Contains(err.Error(), "every benchmark failed") {
		t.Fatalf("all-failed tolerate error = %v", err)
	}
}
