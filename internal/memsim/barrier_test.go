package memsim

import (
	"testing"

	"github.com/uteda/gmap/internal/gpu"
	"github.com/uteda/gmap/internal/trace"
	"github.com/uteda/gmap/internal/workloads"
)

// barrierWarps builds one block of n warps: warp 0 does `slow` loads, the
// rest one load, then all hit a barrier, then every warp does one more
// load. Without the barrier the fast warps would finish long before warp
// 0; with it, the post-barrier loads of every warp issue after warp 0's
// pre-barrier phase completes.
func barrierWarps(n, slow int) []trace.WarpTrace {
	warps := make([]trace.WarpTrace, n)
	for w := range warps {
		warps[w].WarpID = w
		warps[w].Block = 0
		pre := 1
		if w == 0 {
			pre = slow
		}
		for j := 0; j < pre; j++ {
			warps[w].Requests = append(warps[w].Requests, trace.Request{
				PC: 0x10, Addr: uint64(w)<<20 | uint64(j*128), Kind: trace.Load})
		}
		warps[w].Requests = append(warps[w].Requests, trace.Request{PC: 0xBB, Kind: trace.Sync})
		warps[w].Requests = append(warps[w].Requests, trace.Request{
			PC: 0x20, Addr: uint64(w)<<20 | 0x80000, Kind: trace.Load})
	}
	return warps
}

func TestBarrierCompletes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumCores = 1
	sim, err := New(barrierWarps(4, 50), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 50 + 3 + 4 memory requests; the 4 syncs are not memory requests.
	if m.Requests != 50+3+4 {
		t.Errorf("Requests = %d, want 57 (barriers must not count)", m.Requests)
	}
}

func TestBarrierDelaysFastWarps(t *testing.T) {
	// With the barrier, total cycles are bounded below by warp 0's long
	// pre-barrier phase even though other warps are short.
	run := func(withBarrier bool) uint64 {
		warps := barrierWarps(4, 80)
		if !withBarrier {
			for w := range warps {
				reqs := warps[w].Requests[:0]
				for _, r := range warps[w].Requests {
					if r.Kind != trace.Sync {
						reqs = append(reqs, r)
					}
				}
				warps[w].Requests = reqs
			}
		}
		cfg := DefaultConfig()
		cfg.NumCores = 1
		sim, err := New(warps, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m.Cycles
	}
	with, without := run(true), run(false)
	if with < without {
		t.Errorf("barrier run (%d cycles) shorter than barrier-free (%d)", with, without)
	}
}

func TestBarrierAcrossBlocksIndependent(t *testing.T) {
	// Barriers are per-block: two blocks with barriers must not wait on
	// each other. Block 1's warps have short streams and finish early.
	warps := barrierWarps(2, 30)
	extra := barrierWarps(2, 1)
	for i := range extra {
		extra[i].WarpID = 2 + i
		extra[i].Block = 1
	}
	warps = append(warps, extra...)
	cfg := DefaultConfig()
	cfg.NumCores = 2
	sim, err := New(warps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierWithRetiredWarps(t *testing.T) {
	// One warp of the block has no barrier at all (divergent path) and
	// retires early; the others must still be released.
	warps := barrierWarps(3, 5)
	warps[2].Requests = []trace.Request{
		{PC: 0x10, Addr: 0x999000, Kind: trace.Load},
	}
	cfg := DefaultConfig()
	cfg.NumCores = 1
	sim, err := New(warps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierMismatchedCounts(t *testing.T) {
	// Warp 0 has two barriers, warp 1 only one: after warp 1 retires, warp
	// 0's second barrier must release on the live-population rule rather
	// than deadlock.
	warps := make([]trace.WarpTrace, 2)
	for w := range warps {
		warps[w].WarpID = w
		warps[w].Block = 0
		warps[w].Requests = []trace.Request{
			{PC: 0x10, Addr: uint64(w) << 16, Kind: trace.Load},
			{PC: 0xB0, Kind: trace.Sync},
			{PC: 0x18, Addr: uint64(w)<<16 | 0x100, Kind: trace.Load},
		}
	}
	warps[0].Requests = append(warps[0].Requests,
		trace.Request{PC: 0xB8, Kind: trace.Sync},
		trace.Request{PC: 0x20, Addr: 0x777000, Kind: trace.Load},
	)
	cfg := DefaultConfig()
	cfg.NumCores = 1
	sim, err := New(warps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != 2+2+1 {
		t.Errorf("Requests = %d, want 5", m.Requests)
	}
}

func TestBarrierEndToEnd(t *testing.T) {
	// bp carries a real barrier through emulation, coalescing, profiling,
	// generation and simulation; both sides must complete and stay close.
	// (Covered in more depth by core's accuracy tests; this guards the
	// plumbing.)
	cfg := DefaultConfig()
	cfg.NumCores = 4
	tr := traceOf(t, "bp")
	warps := coalesce(tr)
	hasSync := false
	for _, w := range warps {
		for _, r := range w.Requests {
			if r.Kind == trace.Sync {
				hasSync = true
			}
		}
	}
	if !hasSync {
		t.Fatal("bp warp streams carry no barrier")
	}
	sim, err := New(warps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

// helpers shared with the barrier tests.
func traceOf(t *testing.T, name string) *trace.KernelTrace {
	t.Helper()
	s, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("workload %s missing", name)
	}
	tr, err := s.Trace(1)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func coalesce(tr *trace.KernelTrace) []trace.WarpTrace {
	return gpu.NewCoalescer(128).BuildWarpTraces(tr)
}
