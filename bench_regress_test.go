package gmap

// Benchmark-regression harness. These tests are expensive and
// machine-sensitive, so they only run when GMAP_BENCH_REGRESS=1 (the
// nightly bench-regress CI job sets it); plain `go test` skips them.
//
//	GMAP_BENCH_REGRESS=1 go test -run TestBenchRegress -v .
//
// Two baselines are checked in:
//
//   - BENCH_runner.json pins the serial Fig6a sweep's ns/op. The check
//     fails when the sweep runs >25% slower than the recorded baseline
//     (override the tolerance with GMAP_BENCH_TOLERANCE, a fraction).
//     Refresh with GMAP_BENCH_UPDATE=1 after an intentional change.
//   - BENCH_obs.json pins the observability overhead: the memory-system
//     simulator with a registry attached versus detached. The overhead
//     is a same-process ratio, so unlike raw ns/op it is comparable
//     across machines; it must stay under 3% (GMAP_BENCH_OBS_MAX
//     overrides).
//   - BENCH_trace.json pins the span-tracing overhead the same way: the
//     simulator with a trace span attached versus detached, with the
//     disabled (nil-span) path additionally required to stay within the
//     same 3% budget (GMAP_BENCH_TRACE_MAX overrides).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"testing"
	"time"

	"github.com/uteda/gmap/internal/obs"
)

const (
	envRegress   = "GMAP_BENCH_REGRESS"
	envUpdate    = "GMAP_BENCH_UPDATE"
	envTolerance = "GMAP_BENCH_TOLERANCE"
	envObsMax    = "GMAP_BENCH_OBS_MAX"
	envTraceMax  = "GMAP_BENCH_TRACE_MAX"
	// envMemsimSpeedup overrides the parallel-engine speedup floor (a
	// multiplier, e.g. 4.0); the default scales with runtime.NumCPU.
	envMemsimSpeedup = "GMAP_BENCH_MEMSIM_SPEEDUP"
)

func requireRegress(t *testing.T) {
	t.Helper()
	if os.Getenv(envRegress) != "1" {
		t.Skipf("benchmark-regression checks disabled; set %s=1 to run", envRegress)
	}
}

func envFraction(t *testing.T, name string, def float64) float64 {
	t.Helper()
	s := os.Getenv(name)
	if s == "" {
		return def
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		t.Fatalf("bad %s=%q: want a positive fraction like 0.25", name, s)
	}
	return v
}

// runnerBaseline mirrors BENCH_runner.json. Only the fields the
// regression check reads and refreshes are typed; the rest round-trips
// through Extra so an update never discards the recorded host metadata.
type runnerBaseline struct {
	SerialNsPerOp   int64                      `json:"serial_ns_per_op"`
	ParallelNsPerOp int64                      `json:"parallel_ns_per_op"`
	Speedup         float64                    `json:"speedup"`
	Extra           map[string]json.RawMessage `json:"-"`
}

func (b *runnerBaseline) UnmarshalJSON(data []byte) error {
	if err := json.Unmarshal(data, &b.Extra); err != nil {
		return err
	}
	read := func(key string, dst interface{}) error {
		raw, ok := b.Extra[key]
		if !ok {
			return fmt.Errorf("BENCH_runner.json: missing %q", key)
		}
		delete(b.Extra, key)
		return json.Unmarshal(raw, dst)
	}
	if err := read("serial_ns_per_op", &b.SerialNsPerOp); err != nil {
		return err
	}
	if err := read("parallel_ns_per_op", &b.ParallelNsPerOp); err != nil {
		return err
	}
	return read("speedup", &b.Speedup)
}

func (b runnerBaseline) MarshalJSON() ([]byte, error) {
	out := make(map[string]interface{}, len(b.Extra)+3)
	for k, v := range b.Extra {
		out[k] = v
	}
	out["serial_ns_per_op"] = b.SerialNsPerOp
	out["parallel_ns_per_op"] = b.ParallelNsPerOp
	out["speedup"] = b.Speedup
	return json.MarshalIndent(out, "", "  ")
}

// TestBenchRegressRunner re-times the tier-1 serial sweep benchmark and
// fails when it regressed more than 25% against BENCH_runner.json.
func TestBenchRegressRunner(t *testing.T) {
	requireRegress(t)
	data, err := os.ReadFile("BENCH_runner.json")
	if err != nil {
		t.Fatal(err)
	}
	var base runnerBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}

	serial := testing.Benchmark(BenchmarkSweepSerial).NsPerOp()
	t.Logf("serial sweep: %d ns/op (baseline %d ns/op, %+.1f%%)",
		serial, base.SerialNsPerOp, 100*(float64(serial)/float64(base.SerialNsPerOp)-1))

	if os.Getenv(envUpdate) == "1" {
		parallel := testing.Benchmark(BenchmarkSweepParallel).NsPerOp()
		base.SerialNsPerOp = serial
		base.ParallelNsPerOp = parallel
		base.Speedup = float64(int(100*float64(serial)/float64(parallel))) / 100
		out, err := base.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile("BENCH_runner.json", append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("BENCH_runner.json refreshed: serial=%d parallel=%d", serial, parallel)
		return
	}

	tol := envFraction(t, envTolerance, 0.25)
	if limit := float64(base.SerialNsPerOp) * (1 + tol); float64(serial) > limit {
		t.Fatalf("serial sweep regressed: %d ns/op exceeds baseline %d ns/op by more than %.0f%%\n"+
			"If intentional, refresh with %s=1 %s=1 go test -run TestBenchRegressRunner .",
			serial, base.SerialNsPerOp, tol*100, envRegress, envUpdate)
	}
}

// obsBaseline is BENCH_obs.json: the recorded observability overhead of
// the memory-system simulator.
type obsBaseline struct {
	Benchmark     string  `json:"benchmark"`
	ObsOffNsPerOp int64   `json:"obs_off_ns_per_op"`
	ObsOnNsPerOp  int64   `json:"obs_on_ns_per_op"`
	OverheadFrac  float64 `json:"overhead_frac"`
	MaxFrac       float64 `json:"max_frac"`
	Notes         string  `json:"notes"`
}

// measureSim times one full simulation of the blk workload, returning
// the best (least-noisy) of rounds runs.
func measureSim(t *testing.T, cfg SimConfig, warps []WarpTrace, rounds int) time.Duration {
	t.Helper()
	best := time.Duration(1<<63 - 1)
	for i := 0; i < rounds; i++ {
		start := time.Now()
		if _, err := SimulateWarps(warps, cfg); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// TestBenchRegressObsOverhead measures the instrumented-versus-detached
// simulator in the same process and fails when attaching a registry
// costs more than 3%. The ratio is machine-independent (both sides run
// on the same host back to back), so this check needs no re-baselining
// across machines; BENCH_obs.json records the measurement for reference.
func TestBenchRegressObsOverhead(t *testing.T) {
	requireRegress(t)
	tr, err := BenchmarkTrace("blk", 1)
	if err != nil {
		t.Fatal(err)
	}
	warps := Coalesce(tr, 128)
	// Noisy-neighbour containers swing single runs by several percent —
	// more than the budget itself — so each side takes the minimum over
	// enough rounds for both to hit a quiet scheduling window.
	const rounds = 25

	off := DefaultSimConfig()
	on := DefaultSimConfig()
	on.Obs = obs.New()
	// Warm both paths once so neither side pays first-run effects, then
	// interleave the timed rounds so slow host drift (thermal, noisy
	// container neighbours) biases neither side.
	measureSim(t, off, warps, 1)
	measureSim(t, on, warps, 1)
	offBest, onBest := time.Duration(1<<63-1), time.Duration(1<<63-1)
	for i := 0; i < rounds; i++ {
		if d := measureSim(t, off, warps, 1); d < offBest {
			offBest = d
		}
		if d := measureSim(t, on, warps, 1); d < onBest {
			onBest = d
		}
	}

	overhead := float64(onBest-offBest) / float64(offBest)
	maxFrac := envFraction(t, envObsMax, 0.03)
	t.Logf("obs off: %v  obs on: %v  overhead: %+.2f%% (max %.0f%%)",
		offBest, onBest, overhead*100, maxFrac*100)

	if os.Getenv(envUpdate) == "1" {
		base := obsBaseline{
			Benchmark:     "SimulateWarps(blk, scale 1), min of 25 interleaved runs, obs registry attached vs detached",
			ObsOffNsPerOp: offBest.Nanoseconds(),
			ObsOnNsPerOp:  onBest.Nanoseconds(),
			OverheadFrac:  float64(int(overhead*10000)) / 10000,
			MaxFrac:       maxFrac,
			Notes: "Overhead is a same-process ratio and transfers across machines, unlike the raw ns/op. " +
				"Hot paths count into plain tallies flushed to the registry once per run, stall " +
				"classification is O(1) via incremental occupancy shadows, and one sampler Due check " +
				"per scheduler iteration gates the expensive stats passes. Refresh with " +
				"GMAP_BENCH_REGRESS=1 GMAP_BENCH_UPDATE=1 go test -run TestBenchRegressObsOverhead .",
		}
		out, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile("BENCH_obs.json", append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("BENCH_obs.json refreshed")
		return
	}

	if overhead > maxFrac {
		t.Fatalf("observability overhead %.2f%% exceeds the %.0f%% budget (obs off %v, obs on %v)",
			overhead*100, maxFrac*100, offBest, onBest)
	}
}

// traceBaseline is BENCH_trace.json: the recorded span-tracing overhead
// of the memory-system simulator.
type traceBaseline struct {
	Benchmark       string  `json:"benchmark"`
	TraceOffNsPerOp int64   `json:"trace_off_ns_per_op"`
	TraceOnNsPerOp  int64   `json:"trace_on_ns_per_op"`
	OverheadFrac    float64 `json:"overhead_frac"`
	MaxFrac         float64 `json:"max_frac"`
	Notes           string  `json:"notes"`
}

// TestBenchRegressTraceOverhead measures the traced-versus-untraced
// simulator in the same process and fails when attaching a span costs
// more than 3%. The untraced side runs the nil-span path that every
// production simulation without -trace-out takes, so this is also the
// disabled-path budget. BENCH_trace.json records the measurement.
func TestBenchRegressTraceOverhead(t *testing.T) {
	requireRegress(t)
	tr, err := BenchmarkTrace("blk", 1)
	if err != nil {
		t.Fatal(err)
	}
	warps := Coalesce(tr, 128)
	// The true cost is a handful of span records per run — far below the
	// noise floor of a single run on a shared host, where drift has
	// correlation times of whole seconds and min-of-N ratios wander by
	// several percent. Each round therefore times the two sides in an
	// ABBA sequence (off, on, on, off) with each side the min of 5 runs:
	// position effects — the second run in a back-to-back pair reliably
	// pays the first one's GC debt — cancel within the round, slow drift
	// cancels across the palindrome, the min-of-5 strips scheduling
	// spikes from each sample, and outlier rounds fall out of the median
	// taken over rounds. A null experiment (both sides untraced) stays
	// within ±1% under this design.
	const rounds = 9
	const minOf = 5

	off := DefaultSimConfig()
	// Each traced round gets a fresh tracer so the event log never grows
	// across rounds — the measurement stays per-run, not cumulative. The
	// traced root is a RemoteChild of a synthetic coordinator span — the
	// exact shape a distributed worker's simulation runs under — so the
	// budget also covers trace-id adoption and remote-parent bookkeeping.
	coord := NewTracer()
	sweep := coord.Root("bench.sweep")
	defer sweep.End()
	tracedRound := func() time.Duration {
		tracer := NewTracer()
		root := tracer.RemoteChild(sweep.Context(), "bench")
		on := DefaultSimConfig()
		on.TraceSpan = root
		d := measureSim(t, on, warps, minOf)
		root.End()
		return d
	}

	// Warm both paths first so neither side pays first-run effects.
	measureSim(t, off, warps, 1)
	tracedRound()
	ratios := make([]float64, 0, rounds)
	var offBest, onBest time.Duration = 1<<63 - 1, 1<<63 - 1
	for i := 0; i < rounds; i++ {
		dOff1 := measureSim(t, off, warps, minOf)
		dOn1 := tracedRound()
		dOn2 := tracedRound()
		dOff2 := measureSim(t, off, warps, minOf)
		ratios = append(ratios, float64(dOn1+dOn2)/float64(dOff1+dOff2))
		for _, d := range []time.Duration{dOff1, dOff2} {
			if d < offBest {
				offBest = d
			}
		}
		for _, d := range []time.Duration{dOn1, dOn2} {
			if d < onBest {
				onBest = d
			}
		}
	}
	sort.Float64s(ratios)
	overhead := ratios[len(ratios)/2] - 1

	maxFrac := envFraction(t, envTraceMax, 0.03)
	t.Logf("trace off: %v  trace on: %v  median paired overhead: %+.2f%% (max %.0f%%)",
		offBest, onBest, overhead*100, maxFrac*100)

	if os.Getenv(envUpdate) == "1" {
		base := traceBaseline{
			Benchmark:       "SimulateWarps(blk, scale 1), median ABBA-paired ratio (min-of-5 samples) over 9 rounds, trace span attached vs nil",
			TraceOffNsPerOp: offBest.Nanoseconds(),
			TraceOnNsPerOp:  onBest.Nanoseconds(),
			OverheadFrac:    float64(int(overhead*10000)) / 10000,
			MaxFrac:         maxFrac,
			Notes: "Span tracing records two spans per single-launch simulation (memsim.run plus the " +
				"bench root) — the per-run cost is span bookkeeping, not per-request work. The off " +
				"side exercises the nil-span fast path. The overhead is the median of per-round " +
				"paired on/off ratios, which is robust to the slow drift of shared hosts. Refresh " +
				"with GMAP_BENCH_REGRESS=1 GMAP_BENCH_UPDATE=1 go test -run TestBenchRegressTraceOverhead .",
		}
		out, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile("BENCH_trace.json", append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("BENCH_trace.json refreshed")
		return
	}

	if overhead > maxFrac {
		t.Fatalf("span-tracing overhead %.2f%% exceeds the %.0f%% budget (trace off %v, trace on %v)",
			overhead*100, maxFrac*100, offBest, onBest)
	}
}

// BenchmarkSimTraceOff / BenchmarkSimTraceOn expose the two sides of the
// span-tracing measurement as ordinary benchmarks:
//
//	go test -run=xxx -bench='BenchmarkSimTrace' -benchtime=5x .
func BenchmarkSimTraceOff(b *testing.B) {
	benchSimTrace(b, false)
}

func BenchmarkSimTraceOn(b *testing.B) {
	benchSimTrace(b, true)
}

func benchSimTrace(b *testing.B, withTrace bool) {
	b.Helper()
	tr, err := BenchmarkTrace("blk", 1)
	if err != nil {
		b.Fatal(err)
	}
	warps := Coalesce(tr, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultSimConfig()
		if withTrace {
			tracer := NewTracer()
			cfg.TraceSpan = tracer.Root("bench")
		}
		if _, err := SimulateWarps(warps, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimObsOff / BenchmarkSimObsOn expose the two sides of the
// overhead measurement as ordinary benchmarks for ad-hoc comparison:
//
//	go test -run=xxx -bench='BenchmarkSimObs' -benchtime=5x .
func BenchmarkSimObsOff(b *testing.B) {
	benchSimObs(b, false)
}

func BenchmarkSimObsOn(b *testing.B) {
	benchSimObs(b, true)
}

func benchSimObs(b *testing.B, withObs bool) {
	b.Helper()
	tr, err := BenchmarkTrace("blk", 1)
	if err != nil {
		b.Fatal(err)
	}
	warps := Coalesce(tr, 128)
	cfg := DefaultSimConfig()
	if withObs {
		cfg.Obs = obs.New()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateWarps(warps, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// memsimBaseline is BENCH_memsim.json: the recorded single-simulation
// cost of the serial engine and the SM-worker parallel engine.
type memsimBaseline struct {
	Benchmark       string  `json:"benchmark"`
	CPUs            int     `json:"cpus"`
	SimWorkers      int     `json:"sim_workers"`
	SerialNsPerOp   int64   `json:"serial_ns_per_op"`
	ParallelNsPerOp int64   `json:"parallel_ns_per_op"`
	Speedup         float64 `json:"speedup"`
	SpeedupFloor    float64 `json:"speedup_floor"`
	Notes           string  `json:"notes"`
}

// memsimBenchWorkers picks the SM worker count the parallel side runs
// with: every CPU, bounded by the simulated core count.
func memsimBenchWorkers() int {
	w := runtime.NumCPU()
	if cores := DefaultSimConfig().NumCores; w > cores {
		w = cores
	}
	if w < 2 {
		w = 2
	}
	return w
}

// memsimSpeedupFloor is the hard parallel-vs-serial floor for this host's
// CPU count. Intra-run parallelism cannot beat physics: a lockstep
// per-cycle engine on a 1-2 CPU host pays coordination for nothing, so
// few-core hosts only log the ratio, 4-7 CPU hosts (the shared CI
// runners) must clear a modest floor, and >=8 CPU hosts must deliver the
// tentpole's 4x. GMAP_BENCH_MEMSIM_SPEEDUP overrides.
func memsimSpeedupFloor(cpus int) float64 {
	switch {
	case cpus >= 8:
		return 4.0
	case cpus >= 4:
		return 1.3
	default:
		return 0 // measured and recorded, not gated
	}
}

// TestBenchRegressMemsim times one full simulation under the serial
// engine and the parallel engine with the BENCH_trace ABBA methodology
// (per round: serial, parallel, parallel, serial, each side min-of-5;
// median of per-round ratios), then enforces two budgets: the serial
// path must stay within GMAP_BENCH_TOLERANCE of BENCH_memsim.json's
// recorded ns/op (the refactor's serial no-regression budget), and on
// multi-core hosts the parallel engine must clear the CPU-scaled
// speedup floor.
func TestBenchRegressMemsim(t *testing.T) {
	requireRegress(t)
	tr, err := BenchmarkTrace("blk", 1)
	if err != nil {
		t.Fatal(err)
	}
	warps := Coalesce(tr, 128)
	const rounds = 9
	const minOf = 5

	serialCfg := DefaultSimConfig()
	parCfg := DefaultSimConfig()
	parCfg.Workers = memsimBenchWorkers()

	measureSim(t, serialCfg, warps, 1)
	measureSim(t, parCfg, warps, 1)
	ratios := make([]float64, 0, rounds)
	var serialBest, parBest time.Duration = 1<<63 - 1, 1<<63 - 1
	for i := 0; i < rounds; i++ {
		dS1 := measureSim(t, serialCfg, warps, minOf)
		dP1 := measureSim(t, parCfg, warps, minOf)
		dP2 := measureSim(t, parCfg, warps, minOf)
		dS2 := measureSim(t, serialCfg, warps, minOf)
		ratios = append(ratios, float64(dS1+dS2)/float64(dP1+dP2))
		for _, d := range []time.Duration{dS1, dS2} {
			if d < serialBest {
				serialBest = d
			}
		}
		for _, d := range []time.Duration{dP1, dP2} {
			if d < parBest {
				parBest = d
			}
		}
	}
	sort.Float64s(ratios)
	speedup := ratios[len(ratios)/2]
	cpus := runtime.NumCPU()
	floor := memsimSpeedupFloor(cpus)
	if os.Getenv(envMemsimSpeedup) != "" {
		floor = envFraction(t, envMemsimSpeedup, floor)
	}
	t.Logf("serial: %v  parallel(%d workers): %v  median paired speedup: %.2fx on %d CPUs (floor %.2fx)",
		serialBest, parCfg.Workers, parBest, speedup, cpus, floor)

	if os.Getenv(envUpdate) == "1" {
		base := memsimBaseline{
			Benchmark:       "SimulateWarps(blk, scale 1), median ABBA-paired serial/parallel ratio (min-of-5 samples) over 9 rounds",
			CPUs:            cpus,
			SimWorkers:      parCfg.Workers,
			SerialNsPerOp:   serialBest.Nanoseconds(),
			ParallelNsPerOp: parBest.Nanoseconds(),
			Speedup:         float64(int(speedup*100)) / 100,
			SpeedupFloor:    memsimSpeedupFloor(cpus),
			Notes: "Both engines produce bit-identical results (TestSimParallelMatchesSerial); this records " +
				"their relative cost. The speedup floor scales with the host: >=8 CPUs demand 4x, 4-7 CPUs " +
				"(shared CI runners) 1.3x, fewer CPUs record the ratio without gating — a lockstep per-cycle " +
				"engine cannot speed up a 1-CPU host. The serial ns/op doubles as the refactor's " +
				"no-regression budget, checked against GMAP_BENCH_TOLERANCE. Refresh with " +
				"GMAP_BENCH_REGRESS=1 GMAP_BENCH_UPDATE=1 go test -run TestBenchRegressMemsim .",
		}
		out, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile("BENCH_memsim.json", append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("BENCH_memsim.json refreshed")
		return
	}

	data, err := os.ReadFile("BENCH_memsim.json")
	if err != nil {
		t.Fatal(err)
	}
	var base memsimBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	tol := envFraction(t, envTolerance, 0.25)
	if limit := float64(base.SerialNsPerOp) * (1 + tol); float64(serialBest.Nanoseconds()) > limit {
		t.Fatalf("serial engine regressed: %d ns/op exceeds baseline %d ns/op by more than %.0f%%\n"+
			"If intentional, refresh with %s=1 %s=1 go test -run TestBenchRegressMemsim .",
			serialBest.Nanoseconds(), base.SerialNsPerOp, tol*100, envRegress, envUpdate)
	}
	if floor > 0 && speedup < floor {
		t.Fatalf("parallel engine speedup %.2fx under the %.2fx floor for a %d-CPU host (serial %v, parallel %v with %d workers)",
			speedup, floor, cpus, serialBest, parBest, parCfg.Workers)
	}
}

// BenchmarkMemsimSerial / BenchmarkMemsimParallel expose the two engines
// as ordinary benchmarks for ad-hoc comparison:
//
//	go test -run=xxx -bench='BenchmarkMemsim' -benchtime=5x .
func BenchmarkMemsimSerial(b *testing.B) {
	benchMemsim(b, 0)
}

func BenchmarkMemsimParallel(b *testing.B) {
	benchMemsim(b, memsimBenchWorkers())
}

func benchMemsim(b *testing.B, workers int) {
	b.Helper()
	tr, err := BenchmarkTrace("blk", 1)
	if err != nil {
		b.Fatal(err)
	}
	warps := Coalesce(tr, 128)
	cfg := DefaultSimConfig()
	cfg.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateWarps(warps, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
