// Property tests for the parallel engine: Config.Workers is a pure
// execution detail. Metrics, every observability export and every trace
// export must be bit-identical between the serial engine and the SM-
// worker engine for any worker count, across randomized configurations,
// streams and launch sequences — including barriers, bounded MSHR files,
// both prefetchers and every scheduling policy.
package memsim_test

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/uteda/gmap/internal/dram"
	"github.com/uteda/gmap/internal/memsim"
	"github.com/uteda/gmap/internal/obs"
	obstrace "github.com/uteda/gmap/internal/obs/trace"
	"github.com/uteda/gmap/internal/prefetch"
	"github.com/uteda/gmap/internal/proptest"
	"github.com/uteda/gmap/internal/trace"
)

// simRunOut is one fully instrumented run: the metrics plus every export
// surface a user could diff — the obs snapshot, the cycle-keyed series,
// and the span trace (exported with an injected deterministic clock so
// wall timestamps cannot excuse a byte difference).
type simRunOut struct {
	m          memsim.Metrics
	snapshot   []byte
	series     []byte
	traceJSONL []byte
}

// runWithWorkers runs launches through one simulator with the given
// worker count, observability and tracing attached.
func runWithWorkers(t *testing.T, seed uint64, launches [][]trace.WarpTrace, cfg memsim.Config, workers int) simRunOut {
	t.Helper()
	reg := obs.New()
	var clk int64
	tr := obstrace.NewWithOptions(obstrace.Options{Now: func() time.Time {
		clk++
		return time.Unix(0, clk*1000)
	}})
	root := tr.Root("test")
	cfg.Obs = reg
	cfg.TraceSpan = root
	cfg.Workers = workers
	sim, err := memsim.NewSequence(launches, cfg)
	if err != nil {
		t.Fatalf("seed %d workers %d: %v", seed, workers, err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatalf("seed %d workers %d: %v", seed, workers, err)
	}
	root.End()
	var snap, series, tj bytes.Buffer
	if err := reg.WriteJSON(&snap); err != nil {
		t.Fatalf("seed %d workers %d: snapshot: %v", seed, workers, err)
	}
	if err := reg.WriteSeriesJSONL(&series); err != nil {
		t.Fatalf("seed %d workers %d: series: %v", seed, workers, err)
	}
	if err := tr.WriteJSONL(&tj); err != nil {
		t.Fatalf("seed %d workers %d: trace: %v", seed, workers, err)
	}
	return simRunOut{m: m, snapshot: snap.Bytes(), series: series.Bytes(), traceJSONL: tj.Bytes()}
}

// TestSimParallelMatchesSerial generates random machines and workloads
// and requires the parallel engine's outputs to be bit-identical to the
// serial engine's at every worker count — DeepEqual metrics (including
// the per-launch breakdown) and byte-equal obs snapshot, series and
// trace exports. Run it under -race to also certify the engine
// data-race-free; GOMAXPROCS must not matter (the CI matrix pins it).
func TestSimParallelMatchesSerial(t *testing.T) {
	n := proptest.N(t, 60, 400)
	for i := 0; i < n; i++ {
		seed := uint64(0x9a7a11e1) + uint64(i)*7919
		g := proptest.New(seed)
		l1cfg := g.CacheConfig()
		l2cfg := g.CacheConfig()
		// Bank count must divide the L2's set count.
		banks := []int{1, 2, 4}[g.R.Intn(3)]
		for l2cfg.SizeBytes/(l2cfg.Ways*l2cfg.LineSize) < banks {
			banks /= 2
		}
		// Single- and multi-launch sequences, with barrier-carrying warps.
		launches := [][]trace.WarpTrace{g.WarpSet(8, 0.08)}
		if g.R.Intn(3) == 0 {
			launches = append(launches, g.WarpSet(5, 0.08))
		}
		cfg := memsim.Config{
			NumCores:     1 + g.R.Intn(6),
			L1:           l1cfg,
			L2:           l2cfg,
			L2Banks:      banks,
			MSHRsPerCore: []int{0, 1, 4, 64}[g.R.Intn(4)],
			DRAM:         dram.DefaultGDDR3(),
			Scheduler:    []memsim.SchedPolicy{memsim.LRR, memsim.GTO, memsim.PSelf}[g.R.Intn(3)],
			SchedPself:   0.7,
			Seed:         g.R.Uint64(),
		}
		if g.R.Intn(3) == 0 {
			cfg.NewL1Prefetcher = func() (prefetch.Prefetcher, error) {
				return prefetch.NewStride(prefetch.DefaultStrideConfig())
			}
		}
		// The L2 prefetcher instance is stateful: build a fresh one per
		// run so no training state leaks between the compared engines.
		useL2pf := g.R.Intn(3) == 0
		scfg := prefetch.DefaultStreamConfig()
		scfg.LineSize = uint64(l2cfg.LineSize)
		mkCfg := func() memsim.Config {
			c := cfg
			if useL2pf {
				p, err := prefetch.NewStream(scfg)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				c.L2Prefetcher = p
			}
			return c
		}

		serial := runWithWorkers(t, seed, launches, mkCfg(), 1)
		for _, w := range []int{2, 8} {
			par := runWithWorkers(t, seed, launches, mkCfg(), w)
			if !reflect.DeepEqual(serial.m, par.m) {
				t.Fatalf("seed %d: metrics diverge at workers=%d\n serial:   %+v\n parallel: %+v",
					seed, w, serial.m, par.m)
			}
			if !bytes.Equal(serial.snapshot, par.snapshot) {
				t.Fatalf("seed %d: obs snapshot diverges at workers=%d\n serial:\n%s\n parallel:\n%s",
					seed, w, serial.snapshot, par.snapshot)
			}
			if !bytes.Equal(serial.series, par.series) {
				t.Fatalf("seed %d: obs series export diverges at workers=%d", seed, w)
			}
			if !bytes.Equal(serial.traceJSONL, par.traceJSONL) {
				t.Fatalf("seed %d: trace export diverges at workers=%d\n serial:\n%s\n parallel:\n%s",
					seed, w, serial.traceJSONL, par.traceJSONL)
			}
		}
	}
}

// panicPrefetcher panics on its nth Observe call — standing in for any
// defect inside an SM worker's shard-local pipeline.
type panicPrefetcher struct{ calls, after int }

func (p *panicPrefetcher) Observe(uint64, int, uint64, bool) []uint64 {
	p.calls++
	if p.calls >= p.after {
		panic("injected SM fault")
	}
	return nil
}

func (p *panicPrefetcher) Reset() {}

// TestSimParallelWorkerPanicPropagates pins the containment contract: a
// panic inside an SM worker goroutine must not kill the process from a
// foreign goroutine — the coordinator re-raises it on Run's own
// goroutine, where a caller's recover (the runner's per-job panic
// isolation) can contain it.
func TestSimParallelWorkerPanicPropagates(t *testing.T) {
	g := proptest.New(42)
	cfg := memsim.Config{
		NumCores: 2,
		L1:       g.CacheConfig(),
		L2:       g.CacheConfig(),
		L2Banks:  1,
		DRAM:     dram.DefaultGDDR3(),
		Workers:  2,
		NewL1Prefetcher: func() (prefetch.Prefetcher, error) {
			return &panicPrefetcher{after: 3}, nil
		},
	}
	sim, err := memsim.New(g.WarpSet(8, 0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic was swallowed: Run returned normally")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "memsim: SM worker panic") {
			t.Fatalf("panic lost its SM-worker provenance: %v", msg)
		}
	}()
	sim.Run()
	t.Fatal("expected Run to panic")
}

// TestSimParallelWorkerCap pins that Workers beyond NumCores is clamped
// rather than spawning idle goroutines, and that Workers on a one-core
// machine still runs (and matches) the serial engine.
func TestSimParallelWorkerCap(t *testing.T) {
	g := proptest.New(7)
	warps := g.WarpSet(6, 0.1)
	cfg := memsim.Config{
		NumCores: 1,
		L1:       g.CacheConfig(),
		L2:       g.CacheConfig(),
		L2Banks:  1,
		DRAM:     dram.DefaultGDDR3(),
	}
	run := func(workers int) memsim.Metrics {
		c := cfg
		c.Workers = workers
		sim, err := memsim.New(warps, c)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	serial := run(0)
	for _, w := range []int{1, 2, 16} {
		if got := run(w); !reflect.DeepEqual(serial, got) {
			t.Fatalf("workers=%d diverges on a 1-core machine:\n serial: %+v\n got:    %+v", w, serial, got)
		}
	}
}
