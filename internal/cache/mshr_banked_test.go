package cache

import "testing"

func TestMSHRMergeAndCapacity(t *testing.T) {
	m := NewMSHRFile(2)
	merged, ok := m.Allocate(0x100)
	if merged || !ok {
		t.Fatalf("first allocation = (%v, %v)", merged, ok)
	}
	merged, ok = m.Allocate(0x100)
	if !merged || !ok {
		t.Fatalf("secondary miss = (%v, %v), want merged", merged, ok)
	}
	if m.InFlight() != 1 {
		t.Errorf("InFlight = %d", m.InFlight())
	}
	m.Allocate(0x200)
	if m.Full() != true {
		t.Error("file not full at capacity")
	}
	if _, ok := m.Allocate(0x300); ok {
		t.Error("allocation beyond capacity succeeded")
	}
	if m.StallEvents != 1 {
		t.Errorf("StallEvents = %d", m.StallEvents)
	}
	m.Release(0x100)
	if m.Lookup(0x100) {
		t.Error("released entry still present")
	}
	if _, ok := m.Allocate(0x300); !ok {
		t.Error("allocation after release failed")
	}
	if m.Allocations != 3 || m.Merges != 1 {
		t.Errorf("counters = %d allocs, %d merges", m.Allocations, m.Merges)
	}
}

func TestMSHRUnbounded(t *testing.T) {
	m := NewMSHRFile(0)
	for i := uint64(0); i < 1000; i++ {
		if _, ok := m.Allocate(i * 64); !ok {
			t.Fatal("unbounded file stalled")
		}
	}
	if m.Full() {
		t.Error("unbounded file reports full")
	}
}

func TestMSHRReleaseUnknown(t *testing.T) {
	m := NewMSHRFile(4)
	m.Release(0xdead) // must not panic
	if m.InFlight() != 0 {
		t.Error("phantom entry")
	}
}

func TestBankedRouting(t *testing.T) {
	b, err := NewBanked(Config{SizeBytes: 1 << 20, Ways: 8, LineSize: 128}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumBanks() != 8 {
		t.Fatalf("NumBanks = %d", b.NumBanks())
	}
	// Consecutive lines hit consecutive banks.
	for i := 0; i < 16; i++ {
		if got := b.BankOf(uint64(i * 128)); got != i%8 {
			t.Errorf("BankOf(line %d) = %d, want %d", i, got, i%8)
		}
	}
	// Same line, different offset: same bank.
	if b.BankOf(0x100) != b.BankOf(0x17f) {
		t.Error("offsets within a line split across banks")
	}
}

func TestBankedAccessAggregation(t *testing.T) {
	b, err := NewBanked(Config{SizeBytes: 16384, Ways: 2, LineSize: 64}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 64; i++ {
		b.Access(i*64, false)
	}
	for i := uint64(0); i < 64; i++ {
		if !b.Access(i*64, false).Hit {
			t.Fatalf("resident line %d missed", i)
		}
	}
	s := b.Stats()
	if s.Accesses != 128 || s.Misses != 64 || s.Hits != 64 {
		t.Errorf("aggregate stats = %+v", s)
	}
	b.Reset()
	if b.Stats().Accesses != 0 {
		t.Error("reset did not clear banks")
	}
}

func TestBankedProbeAndFill(t *testing.T) {
	b, err := NewBanked(Config{SizeBytes: 16384, Ways: 2, LineSize: 64}, 4)
	if err != nil {
		t.Fatal(err)
	}
	b.Fill(0x1000)
	if !b.Probe(0x1000) {
		t.Error("filled line not present")
	}
	if b.Stats().PrefetchFills != 1 {
		t.Error("fill not counted")
	}
}

func TestBankedValidation(t *testing.T) {
	if _, err := NewBanked(Config{SizeBytes: 1 << 20, Ways: 8, LineSize: 128}, 3); err == nil {
		t.Error("non-power-of-two bank count accepted")
	}
	if _, err := NewBanked(Config{SizeBytes: 1 << 20, Ways: 8, LineSize: 128}, 0); err == nil {
		t.Error("zero banks accepted")
	}
	// Per-bank slice ends up with a bad geometry.
	if _, err := NewBanked(Config{SizeBytes: 1024, Ways: 8, LineSize: 128}, 8); err == nil {
		t.Error("degenerate bank slice accepted")
	}
}

func TestBankedFullCapacityUsable(t *testing.T) {
	// Regression test: a working set equal to the total capacity must be
	// fully retained. With naive per-bank indexing the bank-selection
	// bits alias into the set index and only 1/numBanks of each slice's
	// sets are usable.
	b, err := NewBanked(Config{SizeBytes: 1 << 20, Ways: 8, LineSize: 128}, 8)
	if err != nil {
		t.Fatal(err)
	}
	const nLines = 4096 // half the 8192-line capacity
	for i := uint64(0); i < nLines; i++ {
		b.Access(i*128, false)
	}
	for i := uint64(0); i < nLines; i++ {
		if !b.Access(i*128, false).Hit {
			t.Fatalf("resident line %d missed on second pass", i)
		}
	}
	s := b.Stats()
	if s.Misses != nLines {
		t.Errorf("misses = %d, want %d cold only", s.Misses, nLines)
	}
}

func TestBankedVictimAddressSpace(t *testing.T) {
	// Victim addresses must come back in the real address space: thrash
	// one bank and verify every evicted address was previously inserted.
	b, err := NewBanked(Config{SizeBytes: 16384, Ways: 2, LineSize: 64}, 4)
	if err != nil {
		t.Fatal(err)
	}
	inserted := map[uint64]bool{}
	for i := uint64(0); i < 2000; i++ {
		addr := i * 64 * 4 // stay on bank 0
		res := b.Access(addr, true)
		inserted[addr] = true
		if res.Evicted {
			if !inserted[res.EvictedAddr] {
				t.Fatalf("victim %#x was never inserted", res.EvictedAddr)
			}
			if b.BankOf(res.EvictedAddr) != 0 {
				t.Fatalf("victim %#x reported from wrong bank", res.EvictedAddr)
			}
		}
	}
}

func TestBankedLineAddr(t *testing.T) {
	b, _ := NewBanked(Config{SizeBytes: 16384, Ways: 2, LineSize: 64}, 4)
	if b.LineAddr(0x1234) != 0x1200 {
		t.Errorf("LineAddr = %#x", b.LineAddr(0x1234))
	}
}
