package obs

import (
	"strings"
	"testing"
)

// TestNilRegistry pins the disabled implementation: a nil registry hands
// out nil handles, and every handle method on a nil receiver is a no-op
// returning zero values. This is the contract that lets instrumentation
// live in hot paths unconditionally.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports Enabled")
	}
	if c := r.Counter("x"); c != nil {
		t.Fatalf("nil registry Counter = %v, want nil", c)
	}
	if g := r.Gauge("x"); g != nil {
		t.Fatalf("nil registry Gauge = %v, want nil", g)
	}
	if h := r.Histogram("x"); h != nil {
		t.Fatalf("nil registry Histogram = %v, want nil", h)
	}
	if s := r.Sampler("x", 16); s != nil {
		t.Fatalf("nil registry Sampler = %v, want nil", s)
	}

	// All handle operations must be nil-safe no-ops.
	var c *Counter
	c.Inc()
	c.Add(7)
	if c.Value() != 0 {
		t.Fatal("nil Counter has a value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 || g.Max() != 0 {
		t.Fatal("nil Gauge has a value")
	}
	var h *Histogram
	h.Observe(9)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("nil Histogram has observations")
	}
	var s *Sampler
	s.Sample(1, 2)
	if s.Points() != nil || s.Len() != 0 || s.Cap() != 0 {
		t.Fatal("nil Sampler retained points")
	}

	// Registry-level exports on nil.
	snap := r.Snapshot()
	if snap.Counters != nil || snap.Gauges != nil || snap.Histograms != nil || snap.Series != nil {
		t.Fatalf("nil registry Snapshot not zero: %+v", snap)
	}
	if err := r.WriteSeriesJSONL(nil); err != nil {
		t.Fatalf("nil registry WriteSeriesJSONL: %v", err)
	}
	if total := r.CounterTotal("x"); total != 0 {
		t.Fatalf("nil registry CounterTotal = %d", total)
	}
	if got := r.String(); got != "obs: disabled" {
		t.Fatalf("nil registry String = %q", got)
	}

	// Phase on a nil registry must still run f, exactly once.
	ran := 0
	r.Phase("p", func() { ran++ })
	if ran != 1 {
		t.Fatalf("nil registry Phase ran f %d times", ran)
	}
	r.StartTimer("t").Stop()
}

func TestCounter(t *testing.T) {
	r := New()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	if again := r.Counter("reqs"); again != c {
		t.Fatal("same name returned a different counter")
	}
	if other := r.Counter("other"); other == c {
		t.Fatal("different names share a counter")
	}
}

func TestGaugeHighWater(t *testing.T) {
	r := New()
	g := r.Gauge("depth")
	g.Set(5)
	g.Set(2)
	if g.Value() != 2 || g.Max() != 5 {
		t.Fatalf("after Set: value=%d max=%d, want 2/5", g.Value(), g.Max())
	}
	g.Add(10) // 12: new high water
	g.Add(-9) // 3
	if g.Value() != 3 || g.Max() != 12 {
		t.Fatalf("after Add: value=%d max=%d, want 3/12", g.Value(), g.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	// Bucket layout: 0 -> bucket 0; [2^(i-1), 2^i) -> bucket i.
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8, 1024} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("Count = %d, want 8", h.Count())
	}
	if h.Sum() != 0+1+2+3+4+7+8+1024 {
		t.Fatalf("Sum = %d", h.Sum())
	}
	snap := snapshotHistogram(h)
	if snap.Min != 0 || snap.Max != 1024 {
		t.Fatalf("min/max = %d/%d, want 0/1024", snap.Min, snap.Max)
	}
	want := []Bucket{
		{Lo: 0, Hi: 0, Count: 1},       // value 0
		{Lo: 1, Hi: 2, Count: 1},       // 1
		{Lo: 2, Hi: 4, Count: 2},       // 2, 3
		{Lo: 4, Hi: 8, Count: 2},       // 4, 7
		{Lo: 8, Hi: 16, Count: 1},      // 8
		{Lo: 1024, Hi: 2048, Count: 1}, // 1024
	}
	if len(snap.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", snap.Buckets, want)
	}
	for i, b := range want {
		if snap.Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, snap.Buckets[i], b)
		}
	}
	if got, wantMean := h.Mean(), float64(1049)/8; got != wantMean {
		t.Fatalf("Mean = %v, want %v", got, wantMean)
	}
}

// TestLocalHistogramFlush: batching observations through a
// LocalHistogram and flushing must be indistinguishable from observing
// the same values directly, and flushing must reset the local state.
func TestLocalHistogramFlush(t *testing.T) {
	r := New()
	direct := r.Histogram("direct")
	batched := r.Histogram("batched")
	var local LocalHistogram
	values := []uint64{0, 1, 2, 3, 4, 7, 8, 1024, 5, 5, 1 << 40}
	for _, v := range values {
		direct.Observe(v)
		local.Observe(v)
	}
	if local.Count() != uint64(len(values)) {
		t.Fatalf("local Count = %d, want %d", local.Count(), len(values))
	}
	local.FlushTo(batched)
	// Interleave a second batch to check merging into non-empty state.
	for _, v := range []uint64{9, 2} {
		direct.Observe(v)
		local.Observe(v)
	}
	if local.Count() != 2 {
		t.Fatalf("local Count after flush = %d, want 2", local.Count())
	}
	local.FlushTo(batched)

	ds, bs := snapshotHistogram(direct), snapshotHistogram(batched)
	if ds.Count != bs.Count || ds.Sum != bs.Sum || ds.Min != bs.Min || ds.Max != bs.Max {
		t.Fatalf("batched %+v != direct %+v", bs, ds)
	}
	if len(ds.Buckets) != len(bs.Buckets) {
		t.Fatalf("bucket counts differ: %+v vs %+v", bs.Buckets, ds.Buckets)
	}
	for i := range ds.Buckets {
		if ds.Buckets[i] != bs.Buckets[i] {
			t.Fatalf("bucket %d: batched %+v != direct %+v", i, bs.Buckets[i], ds.Buckets[i])
		}
	}

	// Flushing an empty batch, or into a nil histogram, must be safe.
	local.FlushTo(batched)
	local.Observe(3)
	local.FlushTo(nil)
	if local.Count() != 0 {
		t.Fatalf("FlushTo(nil) left Count = %d, want 0", local.Count())
	}
}

func TestHistogramEmpty(t *testing.T) {
	r := New()
	h := r.Histogram("empty")
	if h.Mean() != 0 {
		t.Fatal("empty histogram has a mean")
	}
	snap := snapshotHistogram(h)
	if snap.Min != 0 || snap.Max != 0 || len(snap.Buckets) != 0 {
		t.Fatalf("empty histogram snapshot: %+v", snap)
	}
}

// TestSamplerSparse: fewer offers than the capacity retains every offer
// at stride 1.
func TestSamplerSparse(t *testing.T) {
	r := New()
	s := r.Sampler("sparse", 64)
	for c := uint64(0); c < 30; c++ {
		s.Sample(c, float64(c)*2)
	}
	pts := s.Points()
	if len(pts) != 30 {
		t.Fatalf("retained %d points, want 30", len(pts))
	}
	for i, p := range pts {
		if p.Cycle != uint64(i) || p.Value != float64(i)*2 {
			t.Fatalf("point %d = %+v", i, p)
		}
	}
}

// TestSamplerCompaction: an arbitrarily long dense run stays within the
// capacity while still spanning the whole cycle range at a uniform
// power-of-two stride.
func TestSamplerCompaction(t *testing.T) {
	const cap = 32
	const total = 100_000
	r := New()
	s := r.Sampler("dense", cap)
	for c := uint64(0); c < total; c++ {
		s.Sample(c, float64(c))
	}
	pts := s.Points()
	if len(pts) == 0 || len(pts) > cap {
		t.Fatalf("retained %d points, want 1..%d", len(pts), cap)
	}
	if pts[0].Cycle != 0 {
		t.Fatalf("first retained cycle = %d, want 0", pts[0].Cycle)
	}
	// The sampling stride is a power of two sized to the run: large
	// enough that cap points cover the range, small enough that the
	// series is not needlessly sparse.
	stride := s.stride
	if stride == 0 || stride&(stride-1) != 0 {
		t.Fatalf("stride %d is not a positive power of two", stride)
	}
	if stride*cap < total/4 || stride*cap > 16*total {
		t.Fatalf("stride %d badly sized for %d cycles at cap %d", stride, total, cap)
	}
	// Resolution bound: no gap between retained points exceeds a few
	// strides (compaction boundaries may leave off-grid joints, but never
	// holes), and the series reaches the end of the run.
	for i := 1; i < len(pts); i++ {
		if d := pts[i].Cycle - pts[i-1].Cycle; d > 4*stride {
			t.Fatalf("gap %d at point %d exceeds 4x stride %d", d, i, stride)
		}
		if pts[i].Value != float64(pts[i].Cycle) {
			t.Fatalf("point %d value %v does not match cycle %d", i, pts[i].Value, pts[i].Cycle)
		}
	}
	if last := pts[len(pts)-1].Cycle; total-last > 4*stride {
		t.Fatalf("last retained cycle %d is %d cycles short of %d (stride %d)", last, total-last, total, stride)
	}
}

// TestSamplerCapFloor: tiny capacities are rounded up so compaction
// always has room to halve.
func TestSamplerCapFloor(t *testing.T) {
	r := New()
	s := r.Sampler("tiny", 1)
	if s.Cap() < 8 {
		t.Fatalf("Cap = %d, want >= 8", s.Cap())
	}
	s2 := r.Sampler("deflt", 0)
	if s2.Cap() != DefaultSamplerCap {
		t.Fatalf("default Cap = %d, want %d", s2.Cap(), DefaultSamplerCap)
	}
}

func TestCounterTotal(t *testing.T) {
	r := New()
	r.Counter("l2.bank0.writebacks").Add(3)
	r.Counter("l2.bank1.writebacks").Add(4)
	r.Counter("dram.reads").Add(100)
	if got := r.CounterTotal("l2.bank"); got != 7 {
		t.Fatalf("CounterTotal(l2.bank) = %d, want 7", got)
	}
	if got := r.CounterTotal("nope"); got != 0 {
		t.Fatalf("CounterTotal(nope) = %d, want 0", got)
	}
}

// TestCounterTotalDelimiter is the regression test for the prefix-match
// bug where "runner.job" also matched "runner.jobs_dropped": a prefix
// only matches at a component boundary (exact, or followed by a
// non-letter).
func TestCounterTotalDelimiter(t *testing.T) {
	r := New()
	r.Counter("runner.job").Add(5)
	r.Counter("runner.job.retries").Add(2)
	r.Counter("runner.jobs_dropped").Add(100)
	if got := r.CounterTotal("runner.job"); got != 7 {
		t.Fatalf("CounterTotal(runner.job) = %d, want 7 (jobs_dropped must not match)", got)
	}
	// Digits remain valid boundaries: per-bank counters still aggregate.
	if got := r.CounterTotal("runner.jobs_dropped"); got != 100 {
		t.Fatalf("exact match = %d, want 100", got)
	}
}

func TestPhaseRecordsHistogram(t *testing.T) {
	r := New()
	ran := false
	r.Phase("unit", func() { ran = true })
	if !ran {
		t.Fatal("Phase did not run f")
	}
	h := r.Histogram("phase.unit.ns")
	if h.Count() != 1 {
		t.Fatalf("phase histogram count = %d, want 1", h.Count())
	}
	tm := r.StartTimer("timed.ns")
	tm.Stop()
	if r.Histogram("timed.ns").Count() != 1 {
		t.Fatal("Timer did not record")
	}
}

func TestString(t *testing.T) {
	r := New()
	r.Counter("a")
	r.Gauge("b")
	r.Histogram("c")
	r.Sampler("d", 0)
	got := r.String()
	for _, want := range []string{"1 counters", "1 gauges", "1 histograms", "1 series"} {
		if !strings.Contains(got, want) {
			t.Fatalf("String() = %q, missing %q", got, want)
		}
	}
}
