package runner

import (
	"bufio"
	"encoding/json"
	"errors"
	"io/fs"
	"os"
	"time"
)

// A checkpoint file is JSON Lines: one entry per successfully executed
// job, appended and flushed as the job completes so that killing the
// process loses at most the line being written. Keys are stable job
// hashes (see JobKey), so a resumed run with identical parameters maps
// its jobs onto recorded results; a run with different parameters hashes
// to different keys and shares nothing.
type checkpointEntry struct {
	Key       string          `json:"key"`
	Value     json.RawMessage `json:"value"`
	ElapsedNS int64           `json:"elapsed_ns,omitempty"`
}

// LoadCheckpoint reads the checkpoint at path and returns recorded
// values by job key. A missing file yields an empty map. Lines that do
// not parse — typically the torn final write of a killed run — are
// skipped; later entries for the same key win.
func LoadCheckpoint(path string) (map[string]json.RawMessage, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return map[string]json.RawMessage{}, nil
		}
		return nil, err
	}
	defer f.Close()
	m := make(map[string]json.RawMessage)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	for sc.Scan() {
		var e checkpointEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil || e.Key == "" {
			continue
		}
		m[e.Key] = e.Value
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// checkpointWriter appends entries to a checkpoint file, flushing each
// line so progress survives an abrupt kill.
type checkpointWriter struct {
	f  *os.File
	bw *bufio.Writer
}

func openCheckpoint(path string) (*checkpointWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &checkpointWriter{f: f, bw: bufio.NewWriter(f)}, nil
}

func (c *checkpointWriter) append(key string, value any, elapsed time.Duration) error {
	raw, err := json.Marshal(value)
	if err != nil {
		return err
	}
	line, err := json.Marshal(checkpointEntry{Key: key, Value: raw, ElapsedNS: elapsed.Nanoseconds()})
	if err != nil {
		return err
	}
	if _, err := c.bw.Write(append(line, '\n')); err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *checkpointWriter) close() error {
	if err := c.bw.Flush(); err != nil {
		c.f.Close()
		return err
	}
	return c.f.Close()
}
