// Command gmap-profile extracts a G-MAP statistical profile from a GPU
// memory trace. The input is either a built-in synthetic benchmark
// (-workload) or a trace file (-in) in the gmap binary or text format;
// the output is the profile as JSON.
//
// Usage:
//
//	gmap-profile -workload kmeans -out kmeans.profile.json
//	gmap-profile -in app.trc -format binary -out app.profile.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/uteda/gmap"
	"github.com/uteda/gmap/internal/trace"
)

func main() {
	var (
		workload  = flag.String("workload", "", "built-in benchmark to profile (one of: "+strings.Join(gmap.Benchmarks(), ", ")+")")
		scale     = flag.Int("scale", 1, "workload scale for -workload (1 = default evaluation size)")
		in        = flag.String("in", "", "trace file to profile (alternative to -workload)")
		format    = flag.String("format", "binary", "trace file format: binary or text")
		out       = flag.String("out", "", "output profile path (default stdout)")
		lineSize  = flag.Uint64("line-size", 128, "coalescing line size in bytes")
		threshold = flag.Float64("cluster-threshold", 0.9, "π-profile similarity threshold Th")
		maxM      = flag.Int("max-profiles", 8, "maximum dominant π profiles kept (M)")
		obsSnap   = flag.String("obs-snapshot", "", "dump the observability registry (profiling phase timings, coalescer histograms) as JSON to this file (- for stdout)")
	)
	flag.Parse()

	tr, err := loadTrace(*workload, *scale, *in, *format)
	if err != nil {
		fatal(err)
	}
	cfg := gmap.DefaultProfileConfig()
	cfg.LineSize = *lineSize
	cfg.ClusterThreshold = *threshold
	cfg.MaxProfiles = *maxM
	if *obsSnap != "" {
		cfg.Obs = gmap.NewObsRegistry()
	}
	profile, err := gmap.ProfileTrace(tr, cfg)
	if err != nil {
		fatal(err)
	}
	if *obsSnap != "" {
		if err := writeObsSnapshot(*obsSnap, cfg.Obs); err != nil {
			fatal(err)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := gmap.WriteProfile(w, profile); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "profiled %s: %d threads, %d requests, %d instructions, %d π profiles\n",
		tr.Name, tr.NumThreads(), profile.TotalRequests, len(profile.Insts), len(profile.Profiles))
}

func loadTrace(workload string, scale int, in, format string) (*gmap.KernelTrace, error) {
	switch {
	case workload != "" && in != "":
		return nil, fmt.Errorf("use either -workload or -in, not both")
	case workload != "":
		return gmap.BenchmarkTrace(workload, scale)
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		var tr *gmap.KernelTrace
		if format == "text" {
			tr, err = trace.ReadText(f)
		} else {
			tr, err = gmap.ReadTrace(f)
		}
		if err != nil {
			// FormatError positions (byte offset / line) surface here with
			// the file they refer to.
			return nil, fmt.Errorf("%s: %w", in, err)
		}
		return tr, nil
	default:
		return nil, fmt.Errorf("one of -workload or -in is required")
	}
}

// writeObsSnapshot dumps the registry as JSON; write failures carry the
// destination path.
func writeObsSnapshot(path string, r *gmap.ObsRegistry) error {
	if path == "-" {
		return r.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs snapshot: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("obs snapshot %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs snapshot %s: %w", path, err)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gmap-profile:", err)
	os.Exit(1)
}
