package fault

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestTransientClassifier(t *testing.T) {
	base := errors.New("boom")
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain", base, false},
		{"marked", Transient(base), true},
		{"marked deep", fmt.Errorf("outer: %w", Transient(base)), true},
		{"eintr", syscall.EINTR, true},
		{"eagain wrapped", fmt.Errorf("io: %w", syscall.EAGAIN), true},
		{"ebusy", syscall.EBUSY, true},
		{"enospc fatal", syscall.ENOSPC, false},
		{"injected enospc fatal", ErrInjectedENOSPC, false},
		{"eio fatal", ErrInjectedEIO, false},
		{"crash fatal", ErrCrash, false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("%s: IsTransient = %v, want %v", c.name, got, c.want)
		}
	}
	if Transient(nil) != nil {
		t.Error("Transient(nil) != nil")
	}
	if !errors.Is(ErrInjectedENOSPC, syscall.ENOSPC) {
		t.Error("ErrInjectedENOSPC does not match syscall.ENOSPC")
	}
	if !errors.Is(ErrInjectedEIO, syscall.EIO) {
		t.Error("ErrInjectedEIO does not match syscall.EIO")
	}
	if !errors.Is(Transient(base), base) {
		t.Error("Transient does not unwrap to its cause")
	}
}

func TestWritePlanCrashTearsAtOffset(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, NewWritePlan().CrashAt(10))
	if n, err := w.Write([]byte("0123456")); n != 7 || err != nil {
		t.Fatalf("pre-crash write: n=%d err=%v", n, err)
	}
	n, err := w.Write([]byte("789abcdef"))
	if n != 3 || !IsCrash(err) {
		t.Fatalf("crossing write: n=%d err=%v, want 3 bytes then crash", n, err)
	}
	if got := buf.String(); got != "0123456789" {
		t.Fatalf("stream = %q, want exactly the first 10 bytes", got)
	}
	if n, err := w.Write([]byte("x")); n != 0 || !IsCrash(err) {
		t.Fatalf("post-crash write: n=%d err=%v", n, err)
	}
}

func TestWritePlanShortAndError(t *testing.T) {
	var buf bytes.Buffer
	plan := NewWritePlan().ShortWriteAt(4).ErrorAt(6, ErrInjectedENOSPC)
	w := NewWriter(&buf, plan)
	n, err := w.Write([]byte("aaaaaa"))
	if n != 4 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	// Retrying the remainder crosses the ENOSPC point two bytes later.
	n, err = w.Write([]byte("bbb"))
	if n != 2 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("enospc write: n=%d err=%v", n, err)
	}
	// The stream continues after a non-crash fault.
	if n, err := w.Write([]byte("cc")); n != 2 || err != nil {
		t.Fatalf("post-fault write: n=%d err=%v", n, err)
	}
	if got := buf.String(); got != "aaaabbcc" {
		t.Fatalf("stream = %q", got)
	}
}

func TestInjectFSAppendCrash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	fs := &InjectFS{WritePlanFor: func(name string) *WritePlan {
		return NewWritePlan().CrashAt(5)
	}}
	f, err := fs.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("defg")); !IsCrash(err) {
		t.Fatalf("write past crash point: %v", err)
	}
	if err := f.Sync(); !IsCrash(err) {
		t.Fatalf("sync after crash: %v", err)
	}
	if err := f.Close(); !IsCrash(err) {
		t.Fatalf("close after crash: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "abcde" {
		t.Fatalf("on-disk bytes = %q, want torn at offset 5", data)
	}
}

func TestInjectFSRenameHook(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "a")
	if err := os.WriteFile(old, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	calls := 0
	fs := &InjectFS{RenameErr: func(o, n string) error {
		calls++
		if calls == 1 {
			return ErrInjectedEIO
		}
		return nil
	}}
	if err := fs.Rename(old, filepath.Join(dir, "b")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("first rename: %v", err)
	}
	if _, err := os.Stat(old); err != nil {
		t.Fatalf("failed rename must leave the source intact: %v", err)
	}
	if err := fs.Rename(old, filepath.Join(dir, "b")); err != nil {
		t.Fatalf("second rename: %v", err)
	}
}

func TestScheduleDeterministicAndBounded(t *testing.T) {
	s := &Schedule{Seed: 42, FailProb: 0.5, MaxFailures: 3}
	sawFail, sawClean := false, false
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("job-%d", i)
		f := s.Failures(key)
		if f != s.Failures(key) {
			t.Fatalf("Failures(%q) not deterministic", key)
		}
		if f < 0 || f > 3 {
			t.Fatalf("Failures(%q) = %d, outside [0,3]", key, f)
		}
		if f > 0 {
			sawFail = true
			if err := s.Check(key, f); err == nil || !IsTransient(err) {
				t.Fatalf("attempt %d of %q: err=%v, want transient", f, key, err)
			}
			if err := s.Check(key, f+1); err != nil {
				t.Fatalf("attempt past failure budget must succeed, got %v", err)
			}
		} else {
			sawClean = true
			if err := s.Check(key, 1); err != nil {
				t.Fatalf("clean job failed: %v", err)
			}
		}
	}
	if !sawFail || !sawClean {
		t.Fatalf("schedule degenerate: sawFail=%v sawClean=%v", sawFail, sawClean)
	}
	// Different seeds must produce different patterns somewhere.
	s2 := &Schedule{Seed: 43, FailProb: 0.5, MaxFailures: 3}
	same := true
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("job-%d", i)
		if s.Failures(key) != s2.Failures(key) {
			same = false
			break
		}
	}
	if same {
		t.Error("two different seeds produced identical schedules over 200 keys")
	}
	var nilSched *Schedule
	if nilSched.Failures("x") != 0 || nilSched.Check("x", 1) != nil {
		t.Error("nil schedule must be a no-op")
	}
}
