package trace

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// fuzzKernel is a small but representative trace for seeding: multiple
// threads, mixed kinds, large address deltas (exercising zig-zag), and an
// empty thread.
func fuzzKernel() *KernelTrace {
	return &KernelTrace{
		Name:     "fuzz",
		GridDim:  2,
		BlockDim: 64,
		Threads: []ThreadTrace{
			{ThreadID: 0, Accesses: []Access{
				{PC: 0x400, Addr: 0x10000000, Kind: Load},
				{PC: 0x408, Addr: 0x10000080, Kind: Store},
				{PC: 0x410, Addr: 0x8, Kind: Load},
				{PC: 0x410, Addr: 0xfffffffffffffff0, Kind: Sync},
			}},
			{ThreadID: 1},
			{ThreadID: 2, Accesses: []Access{
				{PC: 0x400, Addr: 0x20000000, Kind: Load},
			}},
		},
	}
}

func fuzzWarpFile() *WarpFile {
	return &WarpFile{
		Name:     "fuzz",
		GridDim:  2,
		BlockDim: 64,
		Warps: []WarpTrace{
			{WarpID: 0, Block: 0, Requests: []Request{
				{PC: 0x400, Addr: 0x10000000, Kind: Load, WarpID: 0, Threads: 32},
				{PC: 0x408, Addr: 0x80, Kind: Store, WarpID: 0, Threads: 7},
			}},
			{WarpID: 3, Block: 1},
		},
	}
}

// FuzzReadBinary feeds arbitrary bytes to the per-thread trace decoder.
// Whatever the input, the decoder must either return an error or a trace
// that survives a clean re-encode/re-decode round trip; it must never
// panic, and a corrupt header claiming billions of elements must not
// cause a giant allocation (the fuzzer's memory limit enforces this).
func FuzzReadBinary(f *testing.F) {
	var good bytes.Buffer
	if err := WriteBinary(&good, fuzzKernel()); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add(good.Bytes()[:len(good.Bytes())/2]) // truncated mid-stream
	f.Add([]byte("GMAPTRC1"))                 // header only
	f.Add([]byte("NOTMAGIC" + "junk"))        // wrong magic
	// Valid magic, then a huge claimed thread count (0xffffffff varint).
	f.Add([]byte("GMAPTRC1\x00\x01\x01\xff\xff\xff\xff\x0f"))

	f.Fuzz(func(t *testing.T, data []byte) {
		k, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, k); err != nil {
			t.Fatalf("re-encode of decoded trace failed: %v", err)
		}
		k2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(k2.Threads) != len(k.Threads) || k2.Name != k.Name {
			t.Fatalf("round trip changed shape: %d/%d threads", len(k2.Threads), len(k.Threads))
		}
		for i := range k.Threads {
			if len(k2.Threads[i].Accesses) != len(k.Threads[i].Accesses) {
				t.Fatalf("thread %d: %d accesses became %d", i,
					len(k.Threads[i].Accesses), len(k2.Threads[i].Accesses))
			}
		}
	})
}

// FuzzReadWarpsBinary is the warp-stream counterpart of FuzzReadBinary.
func FuzzReadWarpsBinary(f *testing.F) {
	var good bytes.Buffer
	if err := WriteWarpsBinary(&good, fuzzWarpFile()); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add(good.Bytes()[:len(good.Bytes())-3])
	f.Add([]byte("GMAPWRP1"))
	f.Add([]byte("GMAPTRC1")) // the other format's magic
	// Valid magic + tiny header, then an absurd warp count.
	f.Add([]byte("GMAPWRP1\x00\x01\x01\xff\xff\xff\xff\xff\xff\x01"))

	f.Fuzz(func(t *testing.T, data []byte) {
		wf, err := ReadWarpsBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteWarpsBinary(&buf, wf); err != nil {
			t.Fatalf("re-encode of decoded warp file failed: %v", err)
		}
		wf2, err := ReadWarpsBinary(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(wf2.Warps) != len(wf.Warps) || wf2.Name != wf.Name {
			t.Fatalf("round trip changed shape: %d/%d warps", len(wf2.Warps), len(wf.Warps))
		}
		for i := range wf.Warps {
			if len(wf2.Warps[i].Requests) != len(wf.Warps[i].Requests) {
				t.Fatalf("warp %d: %d requests became %d", i,
					len(wf.Warps[i].Requests), len(wf2.Warps[i].Requests))
			}
		}
	})
}

// TestCorruptHeadersError pins the hardening down without the fuzzer: a
// header claiming a count beyond the sanity limit must be rejected, and a
// large-but-allowed claimed count over an empty body must hit the
// truncation error without first allocating the claimed size.
func TestCorruptHeadersError(t *testing.T) {
	// uv encodes a sequence of uvarints, for assembling corrupt headers.
	uv := func(vals ...uint64) string {
		var out []byte
		var tmp [binary.MaxVarintLen64]byte
		for _, v := range vals {
			n := binary.PutUvarint(tmp[:], v)
			out = append(out, tmp[:n]...)
		}
		return string(out)
	}
	const wrap = uint64(1) << 63 // wraps to a negative int if cast unchecked
	cases := []struct {
		name string
		data string
	}{
		{"thread count over limit", "GMAPTRC1\x00\x01\x01\xff\xff\xff\xff\xff\xff\xff\xff\x7f"},
		{"huge thread count, empty body", "GMAPTRC1\x00\x01\x01\xff\xff\xff\xff\x07"},
		{"warp count over limit", "GMAPWRP1\x00\x01\x01\xff\xff\xff\xff\xff\xff\xff\xff\x7f"},
		{"huge warp count, empty body", "GMAPWRP1\x00\x01\x01\xff\xff\xff\xff\x07"},
		{"grid dim wraps negative", "GMAPTRC1" + uv(0, wrap, 1, 0)},
		{"block dim wraps negative", "GMAPTRC1" + uv(0, 1, wrap, 0)},
		{"warp grid dim wraps negative", "GMAPWRP1" + uv(0, wrap, 1, 0)},
		{"warp id wraps negative", "GMAPWRP1" + uv(0, 1, 1, 1, wrap, 0, 0)},
		{"warp block id wraps negative", "GMAPWRP1" + uv(0, 1, 1, 1, 0, wrap, 0)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var err error
			if strings.HasPrefix(tc.data, binaryMagic) {
				_, err = ReadBinary(strings.NewReader(tc.data))
			} else {
				_, err = ReadWarpsBinary(strings.NewReader(tc.data))
			}
			if err == nil {
				t.Fatal("corrupt header accepted")
			}
		})
	}
}
