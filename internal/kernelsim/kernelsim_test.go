package kernelsim

import (
	"testing"
	"testing/quick"

	"github.com/uteda/gmap/internal/gpu"
	"github.com/uteda/gmap/internal/trace"
)

func vecAdd(blocks, tpb, iters int) *Kernel {
	total := int64(blocks * tpb)
	return &Kernel{
		Name:   "vecadd",
		Launch: gpu.Linear1D(blocks, tpb),
		Body: []Stmt{
			Loop{Count: iters, Body: []Stmt{
				MemOp{PC: 0x100, Kind: trace.Load, Addr: AddrExpr{Base: 0x10000, TidCoef: 4, IterCoef: []int64{4 * total}}},
				MemOp{PC: 0x108, Kind: trace.Load, Addr: AddrExpr{Base: 0x80000, TidCoef: 4, IterCoef: []int64{4 * total}}},
				MemOp{PC: 0x110, Kind: trace.Store, Addr: AddrExpr{Base: 0xF0000, TidCoef: 4, IterCoef: []int64{4 * total}}},
			}},
		},
	}
}

func TestVecAddShape(t *testing.T) {
	k := vecAdd(2, 64, 3)
	tr, err := k.Emulate()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumThreads() != 128 {
		t.Fatalf("threads = %d", tr.NumThreads())
	}
	if tr.NumAccesses() != 128*3*3 {
		t.Fatalf("accesses = %d", tr.NumAccesses())
	}
}

func TestVecAddAddressing(t *testing.T) {
	tr, err := vecAdd(2, 64, 3).Emulate()
	if err != nil {
		t.Fatal(err)
	}
	// Thread 5, iteration 2, first load: 0x10000 + 4*5 + 2*4*128.
	a := tr.Threads[5].Accesses[6] // 3 ops per iter, iter 2 starts at index 6
	if want := uint64(0x10000 + 20 + 1024); a.Addr != want || a.PC != 0x100 {
		t.Errorf("access = %+v, want addr %#x pc 0x100", a, want)
	}
}

func TestInterThreadStride(t *testing.T) {
	tr, err := vecAdd(1, 32, 1).Emulate()
	if err != nil {
		t.Fatal(err)
	}
	for tid := 1; tid < 32; tid++ {
		d := tr.Threads[tid].Accesses[0].Addr - tr.Threads[tid-1].Accesses[0].Addr
		if d != 4 {
			t.Fatalf("inter-thread stride at tid %d = %d, want 4", tid, d)
		}
	}
}

func TestIntraThreadStride(t *testing.T) {
	tr, err := vecAdd(1, 32, 4).Emulate()
	if err != nil {
		t.Fatal(err)
	}
	// Same PC across iterations: stride = 4 * totalThreads = 128.
	acc := tr.Threads[0].Accesses
	for j := 3; j < len(acc); j += 3 {
		if d := acc[j].Addr - acc[j-3].Addr; d != 128 {
			t.Fatalf("intra stride = %d, want 128", d)
		}
	}
}

func TestDivergence(t *testing.T) {
	k := &Kernel{
		Name:   "div",
		Launch: gpu.Linear1D(1, 64),
		Body: []Stmt{
			MemOp{PC: 1, Kind: trace.Load, Addr: AddrExpr{Base: 0x1000, TidCoef: 4}},
			If{
				Pred: TidMod{M: 2, R: 0},
				Then: []Stmt{MemOp{PC: 2, Kind: trace.Load, Addr: AddrExpr{Base: 0x2000, TidCoef: 4}}},
				Else: []Stmt{MemOp{PC: 3, Kind: trace.Store, Addr: AddrExpr{Base: 0x3000, TidCoef: 4}}},
			},
		},
	}
	tr, err := k.Emulate()
	if err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < 64; tid++ {
		acc := tr.Threads[tid].Accesses
		if len(acc) != 2 {
			t.Fatalf("thread %d has %d accesses", tid, len(acc))
		}
		wantPC := uint64(3)
		if tid%2 == 0 {
			wantPC = 2
		}
		if acc[1].PC != wantPC {
			t.Errorf("thread %d second pc = %#x, want %#x", tid, acc[1].PC, wantPC)
		}
	}
}

func TestTidLess(t *testing.T) {
	p := TidLess{N: 10}
	if !p.Holds(9, nil, 0) || p.Holds(10, nil, 0) {
		t.Error("TidLess wrong")
	}
}

func TestTidModDegenerate(t *testing.T) {
	if (TidMod{M: 0, R: 0}).Holds(5, nil, 0) {
		t.Error("TidMod{0} should never hold")
	}
}

func TestHashProbDeterministic(t *testing.T) {
	p := HashProb{P: 0.5}
	for tid := 0; tid < 100; tid++ {
		a := p.Holds(tid, []int{3}, 42)
		b := p.Holds(tid, []int{3}, 42)
		if a != b {
			t.Fatal("HashProb not deterministic")
		}
	}
}

func TestHashProbRate(t *testing.T) {
	p := HashProb{P: 0.25}
	hits := 0
	const n = 20000
	for tid := 0; tid < n; tid++ {
		if p.Holds(tid, nil, 7) {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.22 || rate > 0.28 {
		t.Errorf("HashProb(0.25) rate = %.3f", rate)
	}
}

func TestHashProbExtremes(t *testing.T) {
	always, never := HashProb{P: 1.1}, HashProb{P: 0}
	for tid := 0; tid < 50; tid++ {
		if !always.Holds(tid, nil, 1) {
			t.Fatal("P>1 predicate failed")
		}
		if never.Holds(tid, nil, 1) {
			t.Fatal("P=0 predicate held")
		}
	}
}

func TestScatterBounded(t *testing.T) {
	k := &Kernel{
		Name:   "scatter",
		Launch: gpu.Linear1D(1, 64),
		Seed:   99,
		Body: []Stmt{
			Loop{Count: 8, Body: []Stmt{
				MemOp{PC: 1, Kind: trace.Load, Addr: AddrExpr{Base: 0x100000, Scatter: 1 << 16, Align: 4}},
			}},
		},
	}
	tr, err := k.Emulate()
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range tr.Threads {
		for _, a := range tt.Accesses {
			if a.Addr < 0x100000 || a.Addr >= 0x100000+1<<16 {
				t.Fatalf("scatter address %#x out of range", a.Addr)
			}
			if a.Addr%4 != 0 {
				t.Fatalf("scatter address %#x not aligned", a.Addr)
			}
		}
	}
}

func TestScatterDeterministic(t *testing.T) {
	k := &Kernel{
		Name:   "scatter",
		Launch: gpu.Linear1D(1, 32),
		Seed:   5,
		Body:   []Stmt{MemOp{PC: 1, Kind: trace.Load, Addr: AddrExpr{Base: 0, Scatter: 4096}}},
	}
	a, err := k.Emulate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.Emulate()
	if err != nil {
		t.Fatal(err)
	}
	for tid := range a.Threads {
		if a.Threads[tid].Accesses[0] != b.Threads[tid].Accesses[0] {
			t.Fatal("scatter not deterministic")
		}
	}
}

func TestNestedLoops(t *testing.T) {
	k := &Kernel{
		Name:   "nest",
		Launch: gpu.Linear1D(1, 32),
		Body: []Stmt{
			Loop{Count: 2, Body: []Stmt{
				Loop{Count: 3, Body: []Stmt{
					MemOp{PC: 1, Kind: trace.Load,
						Addr: AddrExpr{Base: 0, TidCoef: 0, IterCoef: []int64{1000, 10}}},
				}},
			}},
		},
	}
	tr, err := k.Emulate()
	if err != nil {
		t.Fatal(err)
	}
	acc := tr.Threads[0].Accesses
	want := []uint64{0, 10, 20, 1000, 1010, 1020}
	if len(acc) != len(want) {
		t.Fatalf("got %d accesses", len(acc))
	}
	for i := range want {
		if acc[i].Addr != want[i] {
			t.Fatalf("addrs = %v, want %v", acc, want)
		}
	}
}

func TestNegativeAddressClamped(t *testing.T) {
	k := &Kernel{
		Name:   "neg",
		Launch: gpu.Linear1D(1, 32),
		Body:   []Stmt{MemOp{PC: 1, Kind: trace.Load, Addr: AddrExpr{Base: 100, TidCoef: -64}}},
	}
	tr, err := k.Emulate()
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range tr.Threads {
		if tt.Accesses[0].Addr > 1<<40 {
			t.Fatalf("negative address wrapped: %#x", tt.Accesses[0].Addr)
		}
	}
}

func TestWrapWindow(t *testing.T) {
	k := &Kernel{
		Name:   "wrap",
		Launch: gpu.Linear1D(1, 32),
		Body: []Stmt{
			Loop{Count: 10, Body: []Stmt{
				MemOp{PC: 1, Kind: trace.Load,
					Addr: AddrExpr{Base: 0x1000, IterCoef: []int64{4}, Wrap: 16}},
			}},
		},
	}
	tr, err := k.Emulate()
	if err != nil {
		t.Fatal(err)
	}
	acc := tr.Threads[0].Accesses
	// Offsets cycle 0,4,8,12,0,4,8,12,...
	for j, a := range acc {
		want := uint64(0x1000 + (j%4)*4)
		if a.Addr != want {
			t.Fatalf("wrap access %d = %#x, want %#x", j, a.Addr, want)
		}
	}
}

func TestWrapNegativeOffset(t *testing.T) {
	k := &Kernel{
		Name:   "wrapneg",
		Launch: gpu.Linear1D(1, 32),
		Body: []Stmt{
			MemOp{PC: 1, Kind: trace.Load, Addr: AddrExpr{Base: 0x1000, Const: -4, Wrap: 16}},
		},
	}
	tr, err := k.Emulate()
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Threads[0].Accesses[0].Addr; got != 0x1000+12 {
		t.Errorf("negative wrapped offset = %#x, want %#x", got, 0x1000+12)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []*Kernel{
		{Name: "dup", Launch: gpu.Linear1D(1, 32), Body: []Stmt{
			MemOp{PC: 1, Addr: AddrExpr{}},
			MemOp{PC: 1, Addr: AddrExpr{}},
		}},
		{Name: "badloop", Launch: gpu.Linear1D(1, 32), Body: []Stmt{
			Loop{Count: 0, Body: []Stmt{MemOp{PC: 1}}},
		}},
		{Name: "empty", Launch: gpu.Linear1D(1, 32), Body: nil},
		{Name: "badlaunch", Launch: gpu.Linear1D(0, 32), Body: []Stmt{MemOp{PC: 1}}},
	}
	for _, k := range cases {
		if err := k.Validate(); err == nil {
			t.Errorf("kernel %q accepted", k.Name)
		}
		if _, err := k.Emulate(); err == nil {
			t.Errorf("kernel %q emulated", k.Name)
		}
	}
}

func TestStaticPCs(t *testing.T) {
	k := &Kernel{
		Name:   "pcs",
		Launch: gpu.Linear1D(1, 32),
		Body: []Stmt{
			MemOp{PC: 1},
			Loop{Count: 2, Body: []Stmt{MemOp{PC: 2}}},
			If{Pred: TidLess{N: 1}, Then: []Stmt{MemOp{PC: 3}}, Else: []Stmt{MemOp{PC: 4}}},
		},
	}
	pcs := k.StaticPCs()
	want := []uint64{1, 2, 3, 4}
	if len(pcs) != len(want) {
		t.Fatalf("StaticPCs = %v", pcs)
	}
	for i := range want {
		if pcs[i] != want[i] {
			t.Fatalf("StaticPCs = %v, want %v", pcs, want)
		}
	}
}

func TestEmulateDeterministicProperty(t *testing.T) {
	f := func(seed uint64, tpb uint8) bool {
		k := vecAdd(1, int(tpb%64)+32, 2)
		k.Seed = seed
		a, err1 := k.Emulate()
		b, err2 := k.Emulate()
		if err1 != nil || err2 != nil {
			return false
		}
		if a.NumAccesses() != b.NumAccesses() {
			return false
		}
		for i := range a.Threads {
			for j := range a.Threads[i].Accesses {
				if a.Threads[i].Accesses[j] != b.Threads[i].Accesses[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEmulate(b *testing.B) {
	k := vecAdd(16, 256, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := k.Emulate(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBarrierEmission(t *testing.T) {
	k := &Kernel{
		Name:   "bar",
		Launch: gpu.Linear1D(1, 64),
		Body: []Stmt{
			MemOp{PC: 1, Kind: trace.Load, Addr: AddrExpr{Base: 0x1000, TidCoef: 4}},
			Barrier{PC: 2},
			MemOp{PC: 3, Kind: trace.Store, Addr: AddrExpr{Base: 0x2000, TidCoef: 4}},
		},
	}
	tr, err := k.Emulate()
	if err != nil {
		t.Fatal(err)
	}
	for tid, tt := range tr.Threads {
		if len(tt.Accesses) != 3 {
			t.Fatalf("thread %d has %d accesses", tid, len(tt.Accesses))
		}
		bar := tt.Accesses[1]
		if bar.Kind != trace.Sync || bar.PC != 2 || bar.Addr != 0 {
			t.Fatalf("thread %d barrier access = %+v", tid, bar)
		}
	}
	pcs := k.StaticPCs()
	if len(pcs) != 3 || pcs[1] != 2 {
		t.Errorf("StaticPCs = %v, barrier missing", pcs)
	}
}

func TestBarrierDuplicatePCRejected(t *testing.T) {
	k := &Kernel{
		Name:   "dupbar",
		Launch: gpu.Linear1D(1, 32),
		Body: []Stmt{
			MemOp{PC: 1, Kind: trace.Load, Addr: AddrExpr{}},
			Barrier{PC: 1},
		},
	}
	if err := k.Validate(); err == nil {
		t.Error("barrier PC colliding with memop accepted")
	}
}
