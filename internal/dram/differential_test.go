// Differential tests: the production FR-FCFS/FCFS controller against the
// refmodel's strictly in-order FIFO DRAM, in the regime where the two
// must agree exactly, plus scheduler-independent conservation invariants.
package dram_test

import (
	"testing"

	"github.com/uteda/gmap/internal/dram"
	"github.com/uteda/gmap/internal/proptest"
	"github.com/uteda/gmap/internal/refmodel"
)

// runProduction enqueues all requests (nondecreasing arrivals) and drains
// the controller, returning per-ID completions.
func runProduction(t *testing.T, cfg dram.Config, reqs []refmodel.DRAMRequest) (*dram.Controller, map[uint64]dram.Completion) {
	t.Helper()
	ctl, err := dram.NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, len(reqs))
	for i, r := range reqs {
		ids[i] = ctl.Enqueue(r.Addr, r.Write, r.Arrival)
	}
	byID := make(map[uint64]dram.Completion, len(reqs))
	for _, c := range ctl.Drain() {
		byID[c.ID] = c
	}
	// Rewrite completions under the caller's request IDs.
	out := make(map[uint64]dram.Completion, len(reqs))
	for i, r := range reqs {
		out[r.ID] = byID[ids[i]]
	}
	return ctl, out
}

// TestFCFSMatchesFIFOReference: under FCFS scheduling with nondecreasing
// arrivals and all enqueues preceding service, the production controller
// must be cycle-identical to the in-order reference — same completion
// time and row-buffer outcome per request, same row/refresh statistics,
// and (being ratios of identical integer sums) bit-identical queue-length
// and latency averages.
func TestFCFSMatchesFIFOReference(t *testing.T) {
	n := proptest.N(t, 150, 1000)
	for i := 0; i < n; i++ {
		seed := uint64(0xd4a3 + i)
		g := proptest.New(seed)
		cfg := g.DRAMConfig()
		nreqs := 20 + g.R.Intn(200)
		addrs := g.AddrStream(nreqs, uint64(cfg.TxBytes))
		arrivals := g.MonotoneArrivals(nreqs, 40)
		reqs := make([]refmodel.DRAMRequest, nreqs)
		for j := range reqs {
			reqs[j] = refmodel.DRAMRequest{
				ID:      uint64(j),
				Addr:    addrs[j],
				Write:   g.R.Bool(0.3),
				Arrival: arrivals[j],
			}
		}
		ctl, got := runProduction(t, cfg, reqs)
		want, err := refmodel.RunFIFODRAM(cfg, reqs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, r := range reqs {
			gc, wc := got[r.ID], want.Completions[r.ID]
			if gc.Done != wc.Done || gc.RowHit != wc.RowHit {
				t.Fatalf("seed %d req %d (addr %#x write %v arrive %d): production done=%d rowhit=%v, reference done=%d rowhit=%v",
					seed, r.ID, r.Addr, r.Write, r.Arrival, gc.Done, gc.RowHit, wc.Done, wc.RowHit)
			}
		}
		s := ctl.Stats
		if s.Reads != want.Reads || s.Writes != want.Writes ||
			s.RowHits != want.RowHits || s.RowMisses != want.RowMisses ||
			s.RowConflicts != want.RowConflicts || s.Refreshes != want.Refreshes {
			t.Fatalf("seed %d: counters diverged:\nproduction %+v\nreference  %+v", seed, s, want)
		}
		if s.AvgQueueLen() != want.AvgQueueLen ||
			s.AvgReadLatency() != want.AvgReadLatency ||
			s.AvgWriteLatency() != want.AvgWriteLatency {
			t.Fatalf("seed %d: averages diverged: queue %v/%v read %v/%v write %v/%v",
				seed, s.AvgQueueLen(), want.AvgQueueLen,
				s.AvgReadLatency(), want.AvgReadLatency,
				s.AvgWriteLatency(), want.AvgWriteLatency)
		}
	}
}

// TestFRFCFSConservation: the first-ready scheduler reorders service but
// must conserve the work — every request completes exactly once, no
// completion precedes its arrival, row outcomes partition the request
// count, and a request's data never finishes before the minimum
// row-hit latency after arrival.
func TestFRFCFSConservation(t *testing.T) {
	n := proptest.N(t, 150, 1000)
	for i := 0; i < n; i++ {
		seed := uint64(0xf4f4 + i)
		g := proptest.New(seed)
		cfg := g.DRAMConfig()
		cfg.Sched = dram.FRFCFS
		nreqs := 20 + g.R.Intn(150)
		addrs := g.AddrStream(nreqs, uint64(cfg.TxBytes))
		arrivals := g.MonotoneArrivals(nreqs, 40)
		reqs := make([]refmodel.DRAMRequest, nreqs)
		for j := range reqs {
			reqs[j] = refmodel.DRAMRequest{ID: uint64(j), Addr: addrs[j], Write: g.R.Bool(0.3), Arrival: arrivals[j]}
		}
		ctl, got := runProduction(t, cfg, reqs)
		if len(got) != nreqs {
			t.Fatalf("seed %d: %d completions for %d requests", seed, len(got), nreqs)
		}
		burst := uint64(cfg.TxBytes / (2 * cfg.BusBytes))
		if burst < 1 {
			burst = 1
		}
		minLat := uint64(cfg.TCAS) + burst
		for _, r := range reqs {
			c := got[r.ID]
			if c.Done < r.Arrival+minLat {
				t.Fatalf("seed %d req %d: done %d before arrival %d + min latency %d",
					seed, r.ID, c.Done, r.Arrival, minLat)
			}
		}
		s := ctl.Stats
		if s.RowHits+s.RowMisses+s.RowConflicts != uint64(nreqs) {
			t.Fatalf("seed %d: row outcomes %d+%d+%d don't partition %d requests",
				seed, s.RowHits, s.RowMisses, s.RowConflicts, nreqs)
		}
		if s.Requests != uint64(nreqs) || s.Reads+s.Writes != uint64(nreqs) {
			t.Fatalf("seed %d: request accounting %+v for %d requests", seed, s, nreqs)
		}
		if ctl.InFlight() != 0 {
			t.Fatalf("seed %d: %d requests still in flight after Drain", seed, ctl.InFlight())
		}
	}
}
