// Command gmap-eval regenerates the tables and figures of the paper's
// evaluation (§5): Table 1 (application memory patterns), Table 2 (system
// configuration), Figures 6a-6e (cache, prefetcher and scheduler sweeps),
// Figure 7 (DRAM exploration) and Figure 8 (miniaturization).
//
// Usage:
//
//	gmap-eval -exp fig6a
//	gmap-eval -exp all -out results.txt
//	gmap-eval -exp fig7 -benchmarks aes,kmeans,bfs -cores 8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/uteda/gmap"
	"github.com/uteda/gmap/internal/eval"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment id: "+strings.Join(eval.ExperimentIDs(), ", ")+" or all")
		benchmarks  = flag.String("benchmarks", "", "comma-separated benchmark subset (default all 18)")
		scale       = flag.Int("scale", 1, "workload scale")
		scaleFactor = flag.Float64("scale-factor", 4, "proxy miniaturization factor")
		cores       = flag.Int("cores", 0, "simulated SM count (0 = Table 2's 15)")
		seed        = flag.Uint64("seed", 1, "generation seed")
		out         = flag.String("out", "", "write the report to a file (default stdout)")
		quiet       = flag.Bool("quiet", false, "suppress per-benchmark progress")
	)
	flag.Parse()

	opts := gmap.ExperimentOptions{
		Scale:       *scale,
		ScaleFactor: *scaleFactor,
		Cores:       *cores,
		Seed:        *seed,
	}
	if *benchmarks != "" {
		opts.Benchmarks = strings.Split(*benchmarks, ",")
	}
	if !*quiet {
		opts.Progress = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := gmap.Experiments(w, *exp, opts); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gmap-eval:", err)
	os.Exit(1)
}
