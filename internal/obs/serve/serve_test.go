package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/uteda/gmap/internal/obs"
	obstrace "github.com/uteda/gmap/internal/obs/trace"
)

func testOptions() Options {
	reg := obs.New()
	reg.Counter("runner.jobs_done").Add(3)
	reg.Gauge("runner.workers").Set(4)
	tr := obstrace.New()
	s := tr.Root("eval.sweep", obstrace.String("experiment", "fig6a"))
	s.Child("runner.job").End()
	s.End()
	return Options{
		Registry: reg,
		Tracer:   tr,
		Progress: func() interface{} {
			return map[string]interface{}{"completed": 3, "total": 10, "eta_s": 1.5}
		},
	}
}

func get(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res, string(body)
}

func TestMetricsRoundTrip(t *testing.T) {
	h := Handler(testOptions())
	res, body := get(t, h, "/metrics")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE gmap_runner_jobs_done counter",
		"gmap_runner_jobs_done 3",
		"gmap_runner_workers 4",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in:\n%s", want, body)
		}
	}
}

func TestMetricsEmptyRegistry(t *testing.T) {
	res, body := get(t, Handler(Options{}), "/metrics")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if body != "" {
		t.Errorf("nil registry should serve an empty exposition, got %q", body)
	}
}

func TestProgressRoundTrip(t *testing.T) {
	res, body := get(t, Handler(testOptions()), "/progress")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	var v struct {
		Completed int     `json:"completed"`
		Total     int     `json:"total"`
		ETA       float64 `json:"eta_s"`
	}
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("progress is not JSON: %v\n%s", err, body)
	}
	if v.Completed != 3 || v.Total != 10 || v.ETA != 1.5 {
		t.Errorf("progress = %+v", v)
	}
}

func TestProgressNoProvider(t *testing.T) {
	res, body := get(t, Handler(Options{}), "/progress")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if strings.TrimSpace(body) != "{}" {
		t.Errorf("want empty object, got %q", body)
	}
}

func TestTraceEndpoints(t *testing.T) {
	h := Handler(testOptions())
	res, body := get(t, h, "/trace")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/trace status = %d", res.StatusCode)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 JSONL events, got %d:\n%s", len(lines), body)
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Errorf("invalid JSONL line %q", line)
		}
	}
	res, body = get(t, h, "/trace/chrome")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/trace/chrome status = %d", res.StatusCode)
	}
	var doc struct {
		TraceEvents []interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("chrome trace not JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Errorf("want 2 trace events, got %d", len(doc.TraceEvents))
	}
}

func TestPprofMounted(t *testing.T) {
	res, body := get(t, Handler(Options{}), "/debug/pprof/")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index missing profiles list:\n%.200s", body)
	}
}

func TestIndexAndNotFound(t *testing.T) {
	h := Handler(Options{})
	if res, body := get(t, h, "/"); res.StatusCode != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index: status %d body %q", res.StatusCode, body)
	}
	if res, _ := get(t, h, "/nope"); res.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d, want 404", res.StatusCode)
	}
}

// TestStartServesAndShutsDownOnCancel runs the real listener: bind :0,
// hit /metrics over TCP, cancel the context, and verify the port closes.
func TestStartServesAndShutsDownOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s, err := Start(ctx, func() Options { o := testOptions(); o.Addr = "127.0.0.1:0"; return o }())
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK || !strings.Contains(string(body), "gmap_runner_jobs_done") {
		t.Fatalf("live /metrics: status %d body %q", res.StatusCode, body)
	}
	cancel()
	if err := s.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// After shutdown the port must refuse connections (give the kernel a
	// moment on slow CI).
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := http.Get("http://" + s.Addr() + "/metrics")
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server still accepting after cancel")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestShutdownIdempotent(t *testing.T) {
	s, err := Start(context.Background(), Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	// No Ready hook: liveness and readiness coincide.
	h := Handler(testOptions())
	for _, path := range []string{"/healthz", "/readyz"} {
		res, body := get(t, h, path)
		if res.StatusCode != http.StatusOK || body != "ok\n" {
			t.Errorf("%s = %d %q, want 200 ok", path, res.StatusCode, body)
		}
	}

	// A failing Ready hook flips /readyz to 503 but leaves /healthz 200.
	o := testOptions()
	o.Ready = func() error { return errNotReady }
	h = Handler(o)
	if res, _ := get(t, h, "/healthz"); res.StatusCode != http.StatusOK {
		t.Errorf("healthz with failing Ready = %d, want 200", res.StatusCode)
	}
	res, body := get(t, h, "/readyz")
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz = %d, want 503", res.StatusCode)
	}
	if !strings.Contains(body, "ledger not open") {
		t.Errorf("readyz body %q does not carry the Ready error", body)
	}
}

var errNotReady = errors.New("ledger not open")

func TestMetricsJSONScrapeFormat(t *testing.T) {
	h := Handler(testOptions())
	res, body := get(t, h, "/metrics.json")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics.json is not a Snapshot: %v\n%s", err, body)
	}
	if snap.Counters["runner.jobs_done"] != 3 {
		t.Errorf("counters = %+v", snap.Counters)
	}

	// Nil registry still serves a valid (empty) snapshot document.
	res, body = get(t, Handler(Options{}), "/metrics.json")
	if res.StatusCode != http.StatusOK || !json.Valid([]byte(body)) {
		t.Fatalf("nil-registry metrics.json = %d %q", res.StatusCode, body)
	}
}

func TestRequestInstrumentation(t *testing.T) {
	o := testOptions()
	h := Handler(o)
	get(t, h, "/metrics")
	get(t, h, "/healthz")
	get(t, h, "/no/such/path")
	snap := o.Registry.Snapshot()
	if got := snap.Counters["http.obs.requests"]; got != 3 {
		t.Errorf("http.obs.requests = %d, want 3", got)
	}
	if got := snap.Counters["http.obs.status.2xx"]; got != 2 {
		t.Errorf("http.obs.status.2xx = %d, want 2", got)
	}
	if got := snap.Counters["http.obs.status.4xx"]; got != 1 {
		t.Errorf("http.obs.status.4xx = %d, want 1", got)
	}
	if hs, ok := snap.Histograms["http.obs.latency_ns"]; !ok || hs.Count != 3 {
		t.Errorf("http.obs.latency_ns = %+v", hs)
	}
}
