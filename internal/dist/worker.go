package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/uteda/gmap/internal/obs"
)

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL ("http://host:port").
	Coordinator string
	// Name identifies this worker in lease attribution and logs; empty
	// derives "host:pid".
	Name string
	// Workers and SimWorkers size the local execution pools, exactly as
	// on a serial run (eval.Options.Workers / .SimWorkers). Pure
	// execution detail: job keys and payloads are unchanged.
	Workers    int
	SimWorkers int
	// Poll is the wait-state retry interval when every part is leased;
	// <= 0 defaults to 500ms (the coordinator's RetryNS suggestion wins
	// when present).
	Poll time.Duration
	// BatchSize is how many results accumulate before a delivery; <= 1
	// streams every completed job immediately, which is what keeps the
	// coordinator's straggler timings live.
	BatchSize int
	// HTTPClient overrides the transport (tests); nil uses a default.
	HTTPClient *http.Client
	// Obs, when non-nil, collects the local execution instrumentation.
	Obs *obs.Registry
	// Logf, when non-nil, receives worker progress lines.
	Logf func(format string, args ...interface{})
}

// client wraps the coordinator's HTTP surface.
type client struct {
	base string
	hc   *http.Client
}

// apiErr lifts an HTTP error body back into the protocol's sentinel
// errors so worker logic can errors.Is on them across the wire.
func (c *client) apiErr(status int, body []byte) error {
	msg := strings.TrimSpace(string(body))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	switch status {
	case http.StatusGone:
		return fmt.Errorf("%w: %s", ErrLeaseGone, msg)
	case http.StatusConflict:
		if strings.Contains(msg, "divergent") {
			return fmt.Errorf("%w: %s", ErrDivergent, msg)
		}
		return fmt.Errorf("%w: %s", ErrForeignKey, msg)
	default:
		return fmt.Errorf("dist: coordinator returned %d: %s", status, msg)
	}
}

func (c *client) post(ctx context.Context, path, contentType string, body []byte, out interface{}) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("dist: %s: %w", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("dist: reading %s response: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return c.apiErr(resp.StatusCode, data)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("dist: decoding %s response: %w", path, err)
	}
	return nil
}

func (c *client) postJSON(ctx context.Context, path string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.post(ctx, path, "application/json", body, out)
}

func (c *client) lease(ctx context.Context, worker string) (LeaseGrant, error) {
	var g LeaseGrant
	err := c.postJSON(ctx, "/dist/v1/lease", leaseRequest{Worker: worker}, &g)
	return g, err
}

func (c *client) heartbeat(ctx context.Context, lease string) error {
	return c.postJSON(ctx, "/dist/v1/heartbeat", leaseOpRequest{Lease: lease}, nil)
}

func (c *client) results(ctx context.Context, b *Batch) (resultsResponse, error) {
	var resp resultsResponse
	data, err := EncodeBatch(b)
	if err != nil {
		return resp, err
	}
	err = c.post(ctx, "/dist/v1/results", "application/octet-stream", data, &resp)
	return resp, err
}

func (c *client) complete(ctx context.Context, lease string) (string, error) {
	var resp completeResponse
	if err := c.postJSON(ctx, "/dist/v1/complete", leaseOpRequest{Lease: lease}, &resp); err != nil {
		return "", err
	}
	return resp.Status, nil
}

// RunWorker joins the coordinator at o.Coordinator and processes leases
// until the sweep is done (returns nil), ctx is cancelled, or an
// unrecoverable error occurs (coordinator unreachable, simulation
// failure, divergence rejection). Losing a lease — expiry or steal —
// is not an error: the shard is abandoned mid-run and the loop asks for
// the next lease.
func RunWorker(ctx context.Context, o WorkerOptions) error {
	if o.Coordinator == "" {
		return errors.New("dist: worker requires a coordinator URL")
	}
	if o.Name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		o.Name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if o.Poll <= 0 {
		o.Poll = 500 * time.Millisecond
	}
	if o.BatchSize < 1 {
		o.BatchSize = 1
	}
	hc := o.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	cl := &client{base: strings.TrimRight(o.Coordinator, "/"), hc: hc}
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		g, err := cl.lease(ctx, o.Name)
		if err != nil {
			return err
		}
		switch g.Status {
		case GrantDone:
			logf("dist: worker %s: sweep complete", o.Name)
			return nil
		case GrantWait:
			wait := o.Poll
			if g.RetryNS > 0 {
				wait = time.Duration(g.RetryNS)
			}
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return ctx.Err()
			}
		case GrantLease:
			logf("dist: worker %s: leased part %d/%d (%d keys)", o.Name, g.Part, g.Parts, len(g.Keys))
			if err := runLease(ctx, cl, o, g, logf); err != nil {
				return err
			}
		default:
			return fmt.Errorf("dist: unknown grant status %q", g.Status)
		}
	}
}

// runLease executes one granted shard: the sweep's own eval pipeline
// restricted (Shard) to the granted keys, streaming every completed
// point back as a checkpoint event (ResultSink), under a heartbeat
// goroutine that cancels the run the moment the lease is lost.
func runLease(ctx context.Context, cl *client, o WorkerOptions, g LeaseGrant, logf func(string, ...interface{})) error {
	mine := make(map[string]bool, len(g.Keys))
	for _, k := range g.Keys {
		mine[k] = true
	}

	shardCtx, cancelShard := context.WithCancel(ctx)
	defer cancelShard()

	// The heartbeat loop renews the lease at a third of its TTL and
	// cancels the shard when the coordinator says the lease is gone —
	// a stolen straggler stops burning CPU on work someone else owns.
	lost := make(chan struct{})
	hbDone := make(chan struct{})
	ttl := time.Duration(g.TTLNS)
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	go func() {
		defer close(hbDone)
		tick := time.NewTicker(ttl / 3)
		defer tick.Stop()
		for {
			select {
			case <-shardCtx.Done():
				return
			case <-tick.C:
				if err := cl.heartbeat(shardCtx, g.Lease); err != nil {
					if errors.Is(err, ErrLeaseGone) {
						logf("dist: worker %s: lease %s lost: %v", o.Name, g.Lease, err)
						close(lost)
						cancelShard()
						return
					}
					// Transport trouble: keep the run going; the TTL is
					// the coordinator's call, not ours.
					logf("dist: worker %s: heartbeat: %v", o.Name, err)
				}
			}
		}
	}()

	var pending []Entry
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		// Deliveries ride ctx, not shardCtx: results computed before a
		// lease loss are still worth delivering (late results merge).
		_, err := cl.results(ctx, &Batch{Lease: g.Lease, Entries: pending})
		if err == nil {
			pending = pending[:0]
		}
		return err
	}

	eo := g.Spec.EvalOptions()
	eo.Workers = o.Workers
	eo.SimWorkers = o.SimWorkers
	eo.Context = shardCtx
	eo.Obs = o.Obs
	eo.Shard = func(key string) bool { return mine[key] }
	eo.ResultSink = func(key string, value json.RawMessage, elapsed time.Duration) error {
		pending = append(pending, Entry{
			Key:       key,
			Value:     json.RawMessage(append([]byte(nil), value...)),
			ElapsedNS: elapsed.Nanoseconds(),
		})
		if len(pending) >= o.BatchSize {
			return flush()
		}
		return nil
	}

	// The shard's assembled report is garbage by construction (the
	// unexecuted keys stay zero): only the streamed per-key payloads
	// matter, so the rendering goes to Discard.
	runErr := eo.Run(io.Discard, g.Spec.Experiment)

	leaseLost := false
	select {
	case <-lost:
		leaseLost = true
	default:
	}
	cancelShard()
	<-hbDone

	// Deliver whatever completed, even after an abandoned shard; the
	// coordinator accepts late results idempotently.
	if ferr := flush(); ferr != nil && runErr == nil && !leaseLost {
		return ferr
	}

	switch {
	case leaseLost:
		// Not an error: someone else owns the part now.
		return nil
	case runErr != nil && ctx.Err() != nil:
		return ctx.Err()
	case runErr != nil:
		return fmt.Errorf("dist: worker %s lease %s: %w", o.Name, g.Lease, runErr)
	}
	status, err := cl.complete(ctx, g.Lease)
	if err != nil {
		// Completion is advisory — the coordinator marks a part done from
		// the results themselves — so a lost acknowledgment (say, the
		// coordinator rendered and exited the instant the last result
		// landed) never fails the worker.
		logf("dist: worker %s: complete: %v", o.Name, err)
		return nil
	}
	logf("dist: worker %s: part %d complete (%s)", o.Name, g.Part, status)
	return nil
}
