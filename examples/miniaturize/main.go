// Trace miniaturization trade-off (the Figure 8 scenario).
//
// The same benchmark is cloned at 1x..16x reduction; for each factor the
// example reports the clone's size, its L1 miss-rate accuracy against the
// original, and the measured simulation speedup. Accuracy degrades
// gracefully while simulation time falls almost linearly — the paper's
// law-of-large-numbers argument in action.
//
// Run with: go run ./examples/miniaturize
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/uteda/gmap"
)

func main() {
	const benchmark = "bp"
	tr, err := gmap.BenchmarkTrace(benchmark, 1)
	if err != nil {
		log.Fatal(err)
	}
	profile, err := gmap.ProfileTrace(tr, gmap.DefaultProfileConfig())
	if err != nil {
		log.Fatal(err)
	}
	cfg := gmap.DefaultSimConfig()

	t0 := time.Now()
	orig, err := gmap.SimulateTrace(tr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	origTime := time.Since(t0)
	fmt.Printf("original %s: %d requests, L1 miss %.4f, simulated in %v\n\n",
		benchmark, orig.Requests, orig.L1MissRate(), origTime.Round(time.Millisecond))

	fmt.Printf("%9s %10s %12s %12s %10s\n", "reduction", "requests", "L1 miss", "error(pp)", "speedup")
	for _, factor := range []float64{1, 2, 4, 8, 16} {
		proxy, err := gmap.Generate(profile, gmap.GenerateOptions{Seed: 1, ScaleFactor: factor})
		if err != nil {
			log.Fatal(err)
		}
		t1 := time.Now()
		clone, err := gmap.SimulateProxy(proxy, cfg)
		if err != nil {
			log.Fatal(err)
		}
		cloneTime := time.Since(t1)
		errPP := (clone.L1MissRate() - orig.L1MissRate()) * 100
		speedup := float64(origTime) / float64(cloneTime)
		fmt.Printf("%8.0fx %10d %12.4f %+12.2f %9.1fx\n",
			factor, clone.Requests, clone.L1MissRate(), errPP, speedup)
	}
}
