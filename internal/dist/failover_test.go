package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/uteda/gmap/internal/obs"
	"github.com/uteda/gmap/internal/proptest"
	"github.com/uteda/gmap/internal/runner"
)

// failoverSeed is the randomized kill-point seed; the nightly fault-soak
// matrix rotates GMAP_DIST_FAILOVER_SEED so every night kills the
// coordinator at a different point of the sweep.
func failoverSeed(t *testing.T) int64 {
	if s := os.Getenv("GMAP_DIST_FAILOVER_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("GMAP_DIST_FAILOVER_SEED=%q: %v", s, err)
		}
		return v
	}
	return 1
}

// TestFailoverConformance is the tentpole contract: a sweep split
// across N ∈ {2,4} workers whose coordinator is killed (ungracefully —
// the server stops answering, the coordinator object is abandoned
// un-Closed, exactly what kill -9 leaves behind) at a seed-randomized
// mid-sweep point, with a standby watching from the start, must finish
// under the takeover coordinator and merge to bytes identical to the
// serial run. Afterwards the deposed incarnation's late traffic — a
// valid-looking result batch carrying its old epoch — must be rejected
// whole, pre-write, and the ledger must still pass strict salvage.
func TestFailoverConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep failover; skipped in -short")
	}
	serial := serialReport(t, "fig6a")
	seed := failoverSeed(t)
	for _, n := range []int{2, 4} {
		n := n
		t.Run(fmt.Sprintf("N=%d", n), func(t *testing.T) {
			runFailover(t, n, seed, serial)
		})
	}
}

func runFailover(t *testing.T, n int, seed int64, serial string) {
	dir := t.TempDir()
	ledger := filepath.Join(dir, "ledger.jsonl")
	addrFile := filepath.Join(dir, "coord.addr")
	reg := obs.New()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Active coordinator (epoch 1).
	cA, err := NewCoordinator(CoordinatorOptions{
		Spec:     quickSpec("fig6a"),
		Parts:    4,
		LeaseTTL: 2 * time.Second,
		Ledger:   ledger,
		Obs:      reg,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srvA, err := cA.Serve(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteAddrFile(nil, addrFile, srvA.URL()); err != nil {
		t.Fatal(err)
	}

	// Standby, watching from the start. It health-checks the active
	// coordinator aggressively (sub-second) so the whole failover fits a
	// test budget; correctness does not depend on the cadence.
	standbyDone := make(chan struct{})
	var takeover *Takeover
	var standbyErr error
	go func() {
		defer close(standbyDone)
		takeover, standbyErr = RunStandby(ctx, StandbyOptions{
			Spec:           quickSpec("fig6a"),
			Ledger:         ledger,
			Listen:         "127.0.0.1:0",
			AddrFile:       addrFile,
			Watch:          []string{srvA.URL()},
			HealthInterval: 100 * time.Millisecond,
			HealthMisses:   3,
			Parts:          4,
			LeaseTTL:       2 * time.Second,
			Obs:            reg,
			Logf:           t.Logf,
		})
	}()

	// Workers discover the coordinator through the addr file only, so a
	// takeover redirects them without any static endpoint list.
	var wg sync.WaitGroup
	workerErrs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			workerErrs[i] = RunWorker(ctx, WorkerOptions{
				AddrFile:     addrFile,
				Name:         fmt.Sprintf("w%d", i),
				Workers:      2,
				Poll:         10 * time.Millisecond,
				Retries:      40,
				RetryBackoff: 50 * time.Millisecond,
				Obs:          reg,
				Logf:         t.Logf,
			})
		}()
	}

	// Kill the coordinator at a randomized mid-sweep point: somewhere
	// past the first merged result, before the last. 30 jobs total.
	rng := rand.New(rand.NewSource(seed + int64(n)))
	killAt := 1 + rng.Intn(25)
	t.Logf("failover: killing active coordinator once %d/30 jobs merged (seed %d)", killAt, seed)
	deadline := time.After(2 * time.Minute)
	for cA.StatusSnapshot().DoneJobs < killAt {
		select {
		case <-deadline:
			t.Fatalf("never reached kill point %d: %+v", killAt, cA.StatusSnapshot())
		case <-time.After(5 * time.Millisecond):
		}
	}
	// kill -9 semantics in-process: the HTTP surface vanishes, and the
	// coordinator object is left un-Closed with its ledger appender open
	// — nobody flushes or cleans anything up.
	srvA.Shutdown()

	// The standby must take over and the workers must finish the sweep
	// against it.
	select {
	case <-standbyDone:
	case <-time.After(2 * time.Minute):
		t.Fatal("standby never acted")
	}
	if standbyErr != nil {
		t.Fatalf("standby: %v", standbyErr)
	}
	if takeover == nil {
		t.Fatal("standby stood down without taking over")
	}
	cB := takeover.Coordinator
	defer takeover.Server.Shutdown()
	if got := cB.Epoch(); got != 2 {
		t.Errorf("takeover epoch = %d, want 2", got)
	}
	if cB.StatusSnapshot().Restored < killAt {
		t.Errorf("takeover restored %d jobs, expected at least the %d merged pre-kill",
			cB.StatusSnapshot().Restored, killAt)
	}

	wg.Wait()
	for i, err := range workerErrs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if err := cB.WaitDone(ctx); err != nil {
		t.Fatal(err)
	}

	// Split-brain probe: the deposed incarnation delivers a late result
	// batch — valid JSON, a real in-universe key, but fenced to epoch 1.
	// It must be rejected whole before any ledger write, by either side:
	// the old coordinator self-fences on its own fence check (note its
	// ledger appender was never closed — this is the first moment it
	// learns it is deposed), and the new one rejects the stale epoch at
	// the door.
	sp := quickSpec("fig6a")
	if err := sp.Normalize(nil); err != nil {
		t.Fatal(err)
	}
	allKeys, err := sp.EvalOptions().SweepKeys(sp.Experiment)
	if err != nil {
		t.Fatal(err)
	}
	late := []Entry{{Key: allKeys[0], Value: json.RawMessage(`{"tampered":true}`), ElapsedNS: 1}}
	if _, _, err := cA.Results("lease-1-0001", 1, late); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("deposed coordinator accepted a late batch: %v", err)
	}
	if _, _, err := cB.Results("lease-1-0001", 1, late); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("takeover coordinator accepted an epoch-1 batch: %v", err)
	}
	if _, err := cA.Lease("zombie"); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("deposed coordinator still grants leases: %v", err)
	}

	if err := cB.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cB.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != serial {
		t.Errorf("post-failover merged report differs from serial:\n--- dist ---\n%s--- serial ---\n%s", buf.String(), serial)
	}
	// The ledger survived two incarnations and a fenced zombie: strict
	// salvage must still see exactly one line per job.
	vals, sv, err := runner.SalvageStrict(nil, ledger)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 30 || sv.Lines != sv.Entries {
		t.Errorf("ledger %d entries / %d lines after failover, want 30 deduplicated", len(vals), sv.Lines)
	}
}

// TestChaosSplitBrainFencing is the fast, synthetic version of the
// split-brain guarantee: a second coordinator claiming the same ledger
// bumps the persisted epoch, after which every mutating operation of
// the first — results, leases, heartbeats, completions — answers
// ErrStaleEpoch without writing a byte, and the first incarnation's
// ledger appender is permanently closed.
func TestChaosSplitBrainFencing(t *testing.T) {
	ledger := filepath.Join(t.TempDir(), "ledger.jsonl")
	c1, keys, _ := syntheticCoordinator(t, 8, CoordinatorOptions{Parts: 2, LeaseTTL: time.Minute, Ledger: ledger})
	g1 := mustLease(t, c1, "w1")
	if _, _, err := c1.Results(g1.Lease, g1.Epoch, []Entry{{Key: g1.Keys[0], Value: payloadFor(g1.Keys[0]), ElapsedNS: 1}}); err != nil {
		t.Fatal(err)
	}

	// Takeover: same ledger, fresh incarnation. Epoch 1 → 2, and the
	// merged result is restored.
	c2, _, _ := syntheticCoordinator(t, 8, CoordinatorOptions{Parts: 2, LeaseTTL: time.Minute, Ledger: ledger})
	if e1, e2 := c1.Epoch(), c2.Epoch(); e2 != e1+1 {
		t.Fatalf("epochs %d then %d, want a bump", e1, e2)
	}
	if got := c2.StatusSnapshot().Restored; got != 1 {
		t.Fatalf("takeover restored %d, want 1", got)
	}

	// Every mutating op of the deposed incarnation is fenced, and the
	// rejected batch must leave no trace in the ledger.
	entries := []Entry{{Key: g1.Keys[1], Value: payloadFor(g1.Keys[1]), ElapsedNS: 1}}
	if _, _, err := c1.Results(g1.Lease, g1.Epoch, entries); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("deposed Results: %v", err)
	}
	if _, err := c1.Lease("w1"); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("deposed Lease: %v", err)
	}
	if err := c1.Heartbeat(g1.Lease, g1.Epoch); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("deposed Heartbeat: %v", err)
	}
	if _, err := c1.Complete(g1.Lease, g1.Epoch); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("deposed Complete: %v", err)
	}
	if st := c1.StatusSnapshot(); !st.Deposed {
		t.Errorf("deposed coordinator's status %+v does not say so", st)
	}
	if _, err := c1.Replay(); err == nil {
		t.Error("deposed coordinator offered a replay")
	}

	// The new incarnation also fences any batch still quoting epoch 1,
	// even on a lease id it never granted.
	if _, _, err := c2.Results(g1.Lease, g1.Epoch, entries); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale-epoch batch at the takeover: %v", err)
	}

	// The ledger holds exactly the one pre-takeover result; the fenced
	// batches wrote nothing.
	vals, sv, err := runner.SalvageStrict(nil, ledger)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || sv.Lines != 1 {
		t.Fatalf("ledger %d entries / %d lines, want exactly 1", len(vals), sv.Lines)
	}

	// The successor finishes the sweep normally.
	for {
		g := mustLease(t, c2, "w2")
		if g.Status == GrantDone {
			break
		}
		var es []Entry
		for _, k := range g.Keys {
			es = append(es, Entry{Key: k, Value: payloadFor(k), ElapsedNS: 1})
		}
		if _, _, err := c2.Results(g.Lease, g.Epoch, es); err != nil {
			t.Fatal(err)
		}
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	if vals, _, err := runner.SalvageStrict(nil, ledger); err != nil || len(vals) != len(keys) {
		t.Fatalf("final ledger %d entries (%v), want %d", len(vals), err, len(keys))
	}
	_ = c1.Close()
}

// TestEpochFencingProperty drives randomized takeover/delivery
// interleavings on the fake clock and asserts the two fencing
// properties the design document promises:
//
//	(a) a batch fenced to a stale epoch is rejected atomically pre-write
//	    — the ledger line count never moves on a rejection, for ANY
//	    interleaving of takeovers and deliveries;
//	(b) after every takeover-then-re-lease the one-live-lease-per-part
//	    and done ∪ remaining universe invariants hold on the live
//	    incarnation.
func TestEpochFencingProperty(t *testing.T) {
	cases := proptest.N(t, 3, 12)
	for ci := 0; ci < cases; ci++ {
		ci := ci
		t.Run(fmt.Sprintf("seed=%d", ci), func(t *testing.T) {
			g := proptest.New(uint64(4000 + ci))
			ledger := filepath.Join(t.TempDir(), "ledger.jsonl")
			nkeys := 10 + g.R.Intn(20)
			ttl := 10 * time.Second

			fresh := func() *Coordinator {
				c, _, _ := syntheticCoordinator(t, nkeys, CoordinatorOptions{
					Parts:    1 + g.R.Intn(4),
					LeaseTTL: ttl,
					Ledger:   ledger,
				})
				return c
			}
			live := fresh()
			old := []*Coordinator{} // every deposed incarnation, still callable
			type grant struct {
				from *Coordinator
				g    LeaseGrant
			}
			var grants []grant

			ledgerLines := func() int {
				_, sv, err := runner.SalvageCheckpoint(nil, ledger)
				if err != nil {
					t.Fatal(err)
				}
				return sv.Lines
			}

			steps := 80 + g.R.Intn(80)
			for s := 0; s < steps; s++ {
				switch g.R.Intn(8) {
				case 0: // takeover: a new incarnation claims the ledger
					old = append(old, live)
					live = fresh()
					// (b) the re-built incarnation starts structurally sound.
					checkInvariants(t, live)
				case 1, 2: // lease from a random incarnation (live or deposed)
					c := live
					if len(old) > 0 && g.R.Bool(0.3) {
						c = old[g.R.Intn(len(old))]
					}
					lg, err := c.Lease(fmt.Sprintf("w%d", g.R.Intn(3)))
					if err != nil {
						if !errors.Is(err, ErrStaleEpoch) || c == live {
							t.Fatalf("lease: %v (live=%v)", err, c == live)
						}
						continue
					}
					if lg.Status == GrantLease {
						grants = append(grants, grant{from: c, g: lg})
					}
				case 3, 4, 5: // deliver a batch under its original grant epoch
					if len(grants) == 0 {
						continue
					}
					gr := grants[g.R.Intn(len(grants))]
					var entries []Entry
					for _, k := range gr.g.Keys {
						if g.R.Bool(0.4) {
							entries = append(entries, Entry{Key: k, Value: payloadFor(k), ElapsedNS: 1e6})
						}
					}
					// Deliver to a random incarnation — the wire does not
					// know who is live.
					target := live
					if len(old) > 0 && g.R.Bool(0.3) {
						target = old[g.R.Intn(len(old))]
					}
					before := ledgerLines()
					_, _, err := target.Results(gr.g.Lease, gr.g.Epoch, entries)
					if err != nil {
						// (a) any rejection — stale epoch, closed appender —
						// must have written nothing.
						if after := ledgerLines(); after != before {
							t.Fatalf("rejected batch moved the ledger %d -> %d lines (err %v)", before, after, err)
						}
						stale := gr.g.Epoch != live.Epoch() || target != live
						if !stale && len(entries) > 0 {
							t.Fatalf("live-epoch batch on the live coordinator rejected: %v", err)
						}
					}
				case 6: // heartbeat a random grant anywhere
					if len(grants) > 0 {
						gr := grants[g.R.Intn(len(grants))]
						_ = live.Heartbeat(gr.g.Lease, gr.g.Epoch)
					}
				case 7: // (b) invariants hold on the live incarnation
					checkInvariants(t, live)
				}
			}

			// Wind down: the live incarnation finishes the sweep; every
			// deposed incarnation is fully fenced.
			for i := 0; i < 10000; i++ {
				lg, err := live.Lease("drain")
				if err != nil {
					t.Fatal(err)
				}
				if lg.Status == GrantDone {
					break
				}
				if lg.Status == GrantWait {
					// Parts may be stuck behind live leases from this same
					// incarnation; take over to reset them.
					old = append(old, live)
					live = fresh()
					continue
				}
				var es []Entry
				for _, k := range lg.Keys {
					es = append(es, Entry{Key: k, Value: payloadFor(k), ElapsedNS: 1e6})
				}
				if _, _, err := live.Results(lg.Lease, lg.Epoch, es); err != nil {
					t.Fatal(err)
				}
				checkInvariants(t, live)
			}
			for _, c := range old {
				if _, err := c.Lease("zombie"); !errors.Is(err, ErrStaleEpoch) {
					t.Fatalf("deposed epoch %d not fenced: %v", c.Epoch(), err)
				}
				_ = c.Close()
			}
			if err := live.Close(); err != nil {
				t.Fatal(err)
			}
			vals, sv, err := runner.SalvageStrict(nil, ledger)
			if err != nil {
				t.Fatal(err)
			}
			if len(vals) != nkeys || sv.Lines != sv.Entries {
				t.Fatalf("final ledger %d entries / %d lines, want %d deduplicated", len(vals), sv.Lines, nkeys)
			}
		})
	}
}
