// Package api is the clone-and-simulate service: a multi-tenant HTTP
// front end over the content-addressed store (internal/serve/store) and
// the weighted fair admission queue (internal/serve/queue).
//
// Clients upload profiles (or raw traces, profiled server-side), then
// submit jobs referencing them by content hash. Job identity is the
// digest of (profile hash × config hash), so resubmitting the same work
// dedups against the in-flight job and, once finished, is served
// straight from the result cache without consuming a queue slot.
// Admitted jobs are journaled before they are queued and sweep jobs
// stream runner checkpoints, so a killed server resumes its backlog on
// restart and finishes interrupted sweeps from the last completed point.
package api

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/uteda/gmap/internal/eval"
	"github.com/uteda/gmap/internal/fault"
	"github.com/uteda/gmap/internal/memsim"
	"github.com/uteda/gmap/internal/obs"
	obstrace "github.com/uteda/gmap/internal/obs/trace"
	"github.com/uteda/gmap/internal/serve/queue"
	"github.com/uteda/gmap/internal/serve/store"
	"github.com/uteda/gmap/internal/synth"
	"github.com/uteda/gmap/internal/trace"
)

// A SweepDelegate runs sweep jobs on an external execution fabric.
// internal/dist implements it with an in-process coordinator that
// leases partitions to remote workers (the api package cannot import
// dist — dist ships JobSpec inside lease grants — so the seam points
// the other way). RunSweep executes spec over ledger (the job's
// checkpoint file: delegate progress and local progress accumulate in
// the same place) and returns the rendered report. An error means the
// delegate could not finish the sweep — busy, no workers, no progress
// before its deadline — and the caller falls back to local execution,
// resuming from the very same ledger. Handler serves the delegate's
// worker-facing wire surface.
type SweepDelegate interface {
	RunSweep(ctx context.Context, spec JobSpec, ledger string) (string, error)
	Handler() http.Handler
}

// Job statuses, as reported by GET /v1/jobs/{id}.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// Options configures a Service.
type Options struct {
	// Store is the content-addressed profile/result store (required).
	Store *store.Store
	// Queue configures admission: worker slots, backlog depth and
	// per-tenant weights. Obs is overridden with Options.Obs.
	Queue queue.Options
	// SweepWorkers is the runner pool size inside each sweep job
	// (0 = every CPU). Clone and sim jobs are single simulations and
	// ignore it.
	SweepWorkers int
	// Retries and RetryBackoff configure transient-failure retry for
	// sweep simulation points (see eval.Options).
	Retries      int
	RetryBackoff time.Duration
	// Fsync hardens journal, result and checkpoint writes against
	// machine crashes rather than just process kills.
	Fsync bool
	// FS routes store and checkpoint I/O; nil selects the real
	// filesystem.
	FS fault.FS
	// Obs collects service metrics (serve.api.*, serve.queue.*,
	// serve.store.*, serve.tenant.*) into one registry, exposed at
	// /metrics alongside the simulation instrumentation.
	Obs *obs.Registry
	// Tracer, when non-nil, records spans for sweep jobs, exposed at
	// /trace.
	Tracer *obstrace.Tracer
	// SweepDelegate, when non-nil, offers sweep jobs to an external
	// execution fabric (the distributed coordinator) before falling back
	// to the local runner pool. Both paths execute over the same per-job
	// checkpoint, so a sweep that starts distributed and finishes local
	// — or the other way around — never repeats a completed point, and
	// the rendered report is byte-identical either way. The delegate's
	// Handler is mounted under /dist/v1/ so workers dial the service
	// itself.
	SweepDelegate SweepDelegate
	// DefaultTenant is the tenant attributed to requests without an
	// X-Gmap-Tenant header. Default "anonymous".
	DefaultTenant string
	// Logf, when non-nil, receives one line per service event (job
	// admitted/finished, recovery, rejections).
	Logf func(format string, args ...interface{})
}

// Service is the clone-and-simulate service. Create with New, then
// Start; serve Handler over HTTP.
type Service struct {
	o  Options
	st *store.Store
	q  *queue.Queue
	// fleet, when non-nil, is mounted under /fleet/ on the service mux
	// (set with SetFleet before Handler/Start).
	fleet http.Handler

	mu   sync.Mutex
	jobs map[string]*jobState
}

// jobState is the in-memory record of one submitted job. Fields after
// mu are guarded by it.
type jobState struct {
	id          string
	tenant      string
	spec        JobSpec
	profileHash string
	configHash  string

	mu       sync.Mutex
	status   string
	cached   bool
	errMsg   string
	created  time.Time
	finished time.Time
	canceled bool          // user asked for cancellation
	evalOpts *eval.Options // live while a sweep runs, for /progress
}

// New builds a Service. The queue is not started; call Start.
func New(o Options) (*Service, error) {
	if o.Store == nil {
		return nil, fmt.Errorf("serve/api: Options.Store is required")
	}
	if o.DefaultTenant == "" {
		o.DefaultTenant = "anonymous"
	}
	if o.FS == nil {
		o.FS = fault.OS
	}
	qo := o.Queue
	qo.Obs = o.Obs
	s := &Service{
		o:    o,
		st:   o.Store,
		q:    queue.New(qo),
		jobs: make(map[string]*jobState),
	}
	return s, nil
}

// Start launches the queue workers under ctx and re-enqueues journaled
// jobs that never finished (crash recovery). Cancelling ctx drains the
// queue; journaled jobs interrupted by shutdown are recovered by the
// next Start.
func (s *Service) Start(ctx context.Context) error {
	s.q.Start(ctx)
	n, err := s.recover()
	if n > 0 {
		s.logf("recovered %d journaled job(s) into the queue", n)
	}
	return err
}

// Wait blocks until the queue has drained after context cancellation.
func (s *Service) Wait() { s.q.Wait() }

// SetFleet mounts h under /fleet/ on the service mux: the metrics
// federation and fleet status surface when the service fronts a
// distributed sweep fabric (-dist-sweeps). Call before Handler/Start.
func (s *Service) SetFleet(h http.Handler) { s.fleet = h }

// ready backs /readyz: the service is ready while its admission queue
// still accepts submissions. Liveness (/healthz) stays 200 regardless,
// so a draining replica is distinguishable from a dead one.
func (s *Service) ready() error {
	if !s.q.Accepting() {
		return errors.New("job queue closed")
	}
	return nil
}

// Queue exposes queue statistics for admission feedback.
func (s *Service) Queue() *queue.Queue { return s.q }

func (s *Service) logf(format string, args ...interface{}) {
	if s.o.Logf != nil {
		s.o.Logf(format, args...)
	}
}

func (s *Service) counter(name string) *obs.Counter {
	return s.o.Obs.Counter(name)
}

// submit admits one normalized spec for tenant and returns its job
// state. Cache hits (cached=true: the result already exists, in memory
// or on disk) and duplicate in-flight submissions return immediately
// with admitted=false; a full queue returns queue.ErrFull.
func (s *Service) submit(tenant string, spec JobSpec) (js *jobState, admitted, cached bool, err error) {
	profileHash, configHash, id, err := spec.hashes()
	if err != nil {
		return nil, false, false, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	// In-flight (or remembered) job with the same identity: join it.
	if cur, ok := s.jobs[id]; ok {
		cur.mu.Lock()
		st := cur.status
		cur.mu.Unlock()
		if st != StatusFailed && st != StatusCanceled {
			if st == StatusDone {
				s.counter("serve.api.cache_hits").Inc()
				return cur, false, true, nil
			}
			s.counter("serve.api.joined_inflight").Inc()
			return cur, false, false, nil
		}
		// Failed or canceled earlier: fall through and resubmit fresh.
	}

	js = &jobState{
		id:          id,
		tenant:      tenant,
		spec:        spec,
		profileHash: profileHash,
		configHash:  configHash,
		status:      StatusQueued,
		created:     time.Now(),
	}

	// Result already on disk (this process or a predecessor): serve it
	// from the cache without touching the queue.
	if _, ok, rerr := s.st.GetResult(profileHash, configHash); rerr == nil && ok {
		s.counter("serve.api.cache_hits").Inc()
		js.status = StatusDone
		js.cached = true
		js.finished = js.created
		s.jobs[id] = js
		return js, false, true, nil
	}
	s.counter("serve.api.cache_misses").Inc()

	// Journal first, then enqueue: a job is only ever queued with its
	// spec durably on disk, so a crash between the two re-enqueues it
	// on restart instead of losing it.
	env := jobEnvelope{Spec: spec, Tenant: tenant, ProfileHash: profileHash, ConfigHash: configHash}
	if err := s.st.PutJobSpec(id, env); err != nil {
		return nil, false, false, fmt.Errorf("journal job: %w", err)
	}
	if err := s.enqueueLocked(js); err != nil {
		if derr := s.st.DeleteJobSpec(id); derr != nil {
			s.logf("retire journal %s after rejection: %v", id, derr)
		}
		return nil, false, false, err
	}
	return js, true, false, nil
}

// enqueueLocked registers js and hands it to the queue. Caller holds
// s.mu.
func (s *Service) enqueueLocked(js *jobState) error {
	err := s.q.Submit(queue.Job{
		ID:     js.id,
		Tenant: js.tenant,
		Run:    func(ctx context.Context) { s.execute(ctx, js) },
	})
	if err != nil {
		return err
	}
	s.jobs[js.id] = js
	return nil
}

// execute runs one admitted job to completion. It is the queue worker's
// body: by the time it runs, the job's spec is journaled and its inputs
// are pinned in the store.
func (s *Service) execute(ctx context.Context, js *jobState) {
	js.mu.Lock()
	if js.status == StatusCanceled {
		// cancel already finalized this job before dispatch.
		js.mu.Unlock()
		return
	}
	if js.canceled {
		js.status = StatusCanceled
		js.finished = time.Now()
		js.mu.Unlock()
		s.counter("serve.api.jobs_canceled").Inc()
		s.retireJournal(js.id)
		return
	}
	js.status = StatusRunning
	js.mu.Unlock()

	data, err := s.run(ctx, js)
	now := time.Now()
	if err == nil {
		if perr := s.st.PutResult(js.profileHash, js.configHash, data); perr != nil {
			err = fmt.Errorf("commit result: %w", perr)
		}
	}

	js.mu.Lock()
	js.evalOpts = nil
	js.finished = now
	switch {
	case err == nil:
		js.status = StatusDone
		js.mu.Unlock()
		s.counter("serve.api.jobs_done").Inc()
		s.retireJournal(js.id)
		s.logf("job %s (%s, tenant %s) done", js.id, js.spec.Kind, js.tenant)
	case js.canceled:
		js.status = StatusCanceled
		js.errMsg = "canceled"
		js.mu.Unlock()
		s.counter("serve.api.jobs_canceled").Inc()
		s.retireJournal(js.id)
		s.logf("job %s canceled", js.id)
	case ctx.Err() != nil:
		// Shutdown, not user cancellation: keep the journal (and any
		// sweep checkpoint) so the next Start resumes the job.
		js.status = StatusQueued
		js.errMsg = ""
		js.mu.Unlock()
		s.counter("serve.api.jobs_interrupted").Inc()
		s.logf("job %s interrupted by shutdown; journal retained for restart", js.id)
	default:
		js.status = StatusFailed
		js.errMsg = err.Error()
		js.mu.Unlock()
		s.counter("serve.api.jobs_failed").Inc()
		s.retireJournal(js.id)
		s.logf("job %s failed: %v", js.id, err)
	}
}

// retireJournal removes a finished job's spec (and checkpoint) from the
// store; the result, if any, is already committed.
func (s *Service) retireJournal(id string) {
	if err := s.st.DeleteJobSpec(id); err != nil {
		s.logf("retire journal %s: %v", id, err)
	}
}

// run produces the result bytes for one job.
func (s *Service) run(ctx context.Context, js *jobState) ([]byte, error) {
	switch js.spec.Kind {
	case KindClone:
		return s.runClone(js)
	case KindSim:
		return s.runSim(js)
	case KindSweep:
		return s.runSweep(ctx, js)
	default:
		return nil, fmt.Errorf("unknown job kind %q", js.spec.Kind)
	}
}

// cloneResult is the stored result of a clone job.
type cloneResult struct {
	Kind     string `json:"kind"`
	Name     string `json:"name"`
	GridDim  int    `json:"grid_dim"`
	BlockDim int    `json:"block_dim"`
	Warps    int    `json:"warps"`
	Requests int    `json:"requests"`
	// ProxyB64 is the generated proxy in the binary warp-trace format
	// (trace.WriteWarpsBinary), base64-encoded for JSON transport.
	ProxyB64 string `json:"proxy_b64"`
}

func (s *Service) generate(js *jobState) (*synth.Proxy, error) {
	p, err := s.st.GetProfile(js.spec.Profile)
	if err != nil {
		return nil, err
	}
	return synth.Generate(p, synth.Options{
		Seed:           js.spec.Seed,
		ScaleFactor:    js.spec.ScaleFactor,
		Obfuscate:      js.spec.Obfuscate,
		ObfuscationKey: js.spec.Seed,
		Obs:            s.o.Obs,
	})
}

func (s *Service) runClone(js *jobState) ([]byte, error) {
	proxy, err := s.generate(js)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	err = trace.WriteWarpsBinary(&buf, &trace.WarpFile{
		Name:     proxy.Name,
		GridDim:  proxy.GridDim,
		BlockDim: proxy.BlockDim,
		Warps:    proxy.Warps,
	})
	if err != nil {
		return nil, err
	}
	return json.Marshal(cloneResult{
		Kind:     KindClone,
		Name:     proxy.Name,
		GridDim:  proxy.GridDim,
		BlockDim: proxy.BlockDim,
		Warps:    len(proxy.Warps),
		Requests: proxy.Requests,
		ProxyB64: base64.StdEncoding.EncodeToString(buf.Bytes()),
	})
}

// simResult is the stored result of a sim job.
type simResult struct {
	Kind     string         `json:"kind"`
	Name     string         `json:"name"`
	Warps    int            `json:"warps"`
	Requests int            `json:"requests"`
	Metrics  memsim.Metrics `json:"metrics"`
}

func (s *Service) runSim(js *jobState) ([]byte, error) {
	proxy, err := s.generate(js)
	if err != nil {
		return nil, err
	}
	cfg := memsim.DefaultConfig()
	if js.spec.Cores > 0 {
		cfg.NumCores = js.spec.Cores
	}
	sim, err := memsim.New(proxy.Warps, cfg)
	if err != nil {
		return nil, err
	}
	m, err := sim.Run()
	if err != nil {
		return nil, err
	}
	return json.Marshal(simResult{
		Kind:     KindSim,
		Name:     proxy.Name,
		Warps:    len(proxy.Warps),
		Requests: proxy.Requests,
		Metrics:  m,
	})
}

// sweepResult is the stored result of a sweep job: the rendered report,
// byte-identical to gmap-eval -no-timings with the same options.
type sweepResult struct {
	Kind       string `json:"kind"`
	Experiment string `json:"experiment"`
	Report     string `json:"report"`
}

func (s *Service) runSweep(ctx context.Context, js *jobState) ([]byte, error) {
	// Offer the sweep to the distributed fabric first, when one is
	// configured. Delegate and local execution share the job's
	// checkpoint, so a delegate that dies mid-sweep (coordinator lost,
	// workers gone, progress deadline blown) costs nothing: the local
	// fallback resumes from the points the fabric already merged.
	if d := s.o.SweepDelegate; d != nil {
		report, err := d.RunSweep(ctx, js.spec, s.st.CheckpointPath(js.id))
		if err == nil {
			return json.Marshal(sweepResult{
				Kind:       KindSweep,
				Experiment: js.spec.Experiment,
				Report:     report,
			})
		}
		if ctx.Err() != nil {
			return nil, err
		}
		s.counter("serve.api.sweep_delegate_fallbacks").Inc()
		s.logf("job %s: sweep delegate failed (%v); falling back to local execution", js.id, err)
	}
	eo := js.spec.EvalOptions()
	opts := &eo
	opts.Workers = s.o.SweepWorkers
	opts.Checkpoint = s.st.CheckpointPath(js.id)
	opts.Resume = true
	opts.Retries = s.o.Retries
	opts.RetryBackoff = s.o.RetryBackoff
	opts.Fsync = s.o.Fsync
	opts.FS = s.o.FS
	opts.Context = ctx
	opts.Obs = s.o.Obs
	opts.Trace = s.o.Tracer
	js.mu.Lock()
	js.evalOpts = opts
	js.mu.Unlock()
	var buf bytes.Buffer
	if err := opts.Run(&buf, js.spec.Experiment); err != nil {
		return nil, err
	}
	return json.Marshal(sweepResult{
		Kind:       KindSweep,
		Experiment: js.spec.Experiment,
		Report:     buf.String(),
	})
}

// cancel marks a job canceled. Queued jobs are finalized immediately;
// running jobs get their context cancelled and finalize in execute.
func (s *Service) cancel(id string) (found bool) {
	s.mu.Lock()
	js, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	js.mu.Lock()
	switch js.status {
	case StatusQueued:
		js.canceled = true
		js.mu.Unlock()
		// Remove from the backlog. If the queue already dispatched it,
		// execute observes canceled and finalizes; otherwise finalize
		// here.
		if s.q.Cancel(id) {
			js.mu.Lock()
			if js.status == StatusQueued {
				js.status = StatusCanceled
				js.finished = time.Now()
				js.mu.Unlock()
				s.counter("serve.api.jobs_canceled").Inc()
				s.retireJournal(id)
			} else {
				js.mu.Unlock()
			}
		}
		return true
	case StatusRunning:
		js.canceled = true
		js.mu.Unlock()
		s.q.Cancel(id)
		return true
	default:
		js.mu.Unlock()
		return true
	}
}

// recover re-enqueues every journaled job that has no committed result:
// the backlog of a predecessor process that was killed. Jobs whose
// result already exists (crash between PutResult and journal deletion)
// are retired directly.
func (s *Service) recover() (int, error) {
	specs, err := s.st.ListJobSpecs()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, id := range sortedIDs(specs) {
		var env jobEnvelope
		if err := json.Unmarshal(specs[id], &env); err != nil {
			s.counter("serve.api.recovery_bad_specs").Inc()
			s.logf("recovery: job %s has an unreadable envelope: %v", id, err)
			continue
		}
		if _, ok, rerr := s.st.GetResult(env.ProfileHash, env.ConfigHash); rerr == nil && ok {
			s.retireJournal(id)
			continue
		}
		js := &jobState{
			id:          id,
			tenant:      env.Tenant,
			spec:        env.Spec,
			profileHash: env.ProfileHash,
			configHash:  env.ConfigHash,
			status:      StatusQueued,
			created:     time.Now(),
		}
		s.mu.Lock()
		err := s.enqueueLocked(js)
		s.mu.Unlock()
		if err != nil {
			// Queue full: leave the journal for the next restart.
			s.logf("recovery: job %s not re-admitted (%v); journal retained", id, err)
			continue
		}
		s.counter("serve.api.recovered_jobs").Inc()
		n++
	}
	return n, nil
}

// jobView is the wire form of a job's state.
type jobView struct {
	Job         string `json:"job"`
	Kind        string `json:"kind"`
	Status      string `json:"status"`
	Tenant      string `json:"tenant"`
	Cached      bool   `json:"cached,omitempty"`
	Error       string `json:"error,omitempty"`
	ProfileHash string `json:"profile_hash"`
	ConfigHash  string `json:"config_hash"`
	Experiment  string `json:"experiment,omitempty"`
	ResultURL   string `json:"result_url,omitempty"`
}

func (js *jobState) view() jobView {
	js.mu.Lock()
	defer js.mu.Unlock()
	v := jobView{
		Job:         js.id,
		Kind:        js.spec.Kind,
		Status:      js.status,
		Tenant:      js.tenant,
		Cached:      js.cached,
		Error:       js.errMsg,
		ProfileHash: js.profileHash,
		ConfigHash:  js.configHash,
		Experiment:  js.spec.Experiment,
	}
	if js.status == StatusDone {
		v.ResultURL = "/v1/jobs/" + js.id + "/result"
	}
	return v
}

// progress returns a sweep job's live progress, or nil.
func (js *jobState) progress() interface{} {
	js.mu.Lock()
	opts := js.evalOpts
	js.mu.Unlock()
	if opts == nil {
		return nil
	}
	p := opts.ProgressSnapshot()
	return &p
}
