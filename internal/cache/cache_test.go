package cache

import (
	"testing"
	"testing/quick"

	"github.com/uteda/gmap/internal/rng"
)

func mustNew(t testing.TB, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func smallCfg() Config {
	return Config{SizeBytes: 1024, Ways: 2, LineSize: 64} // 8 sets
}

func TestConfigValidate(t *testing.T) {
	if _, err := (Config{SizeBytes: 16384, Ways: 4, LineSize: 128}).Validate(); err != nil {
		t.Errorf("Table 2 L1 config rejected: %v", err)
	}
	bad := []Config{
		{SizeBytes: 1024, Ways: 2, LineSize: 63},       // non-pow2 line
		{SizeBytes: 1000, Ways: 2, LineSize: 64},       // indivisible
		{SizeBytes: 1024, Ways: 0, LineSize: 64},       // zero ways
		{SizeBytes: 3 * 64 * 2, Ways: 2, LineSize: 64}, // 3 sets
	}
	for _, cfg := range bad {
		if _, err := cfg.Validate(); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestConfigString(t *testing.T) {
	cfg := Config{SizeBytes: 16384, Ways: 4, LineSize: 128}
	if got := cfg.String(); got != "16KB 4-way 128B" {
		t.Errorf("String = %q", got)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mustNew(t, smallCfg())
	if r := c.Access(0x1000, false); r.Hit {
		t.Error("cold access hit")
	}
	if r := c.Access(0x1000, false); !r.Hit {
		t.Error("second access missed")
	}
	if r := c.Access(0x1004, false); !r.Hit {
		t.Error("same-line access missed")
	}
	if c.Stats.Accesses != 3 || c.Stats.Hits != 2 || c.Stats.Misses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way: A, B, C in the same set evicts A (LRU); touching A between
	// keeps it.
	c := mustNew(t, smallCfg())
	setStride := uint64(8 * 64) // 8 sets x 64B: same set every 512B
	a, b, d := uint64(0), setStride, 2*setStride
	c.Access(a, false)
	c.Access(b, false)
	r := c.Access(d, false)
	if !r.Evicted || r.EvictedAddr != a {
		t.Errorf("expected eviction of %#x, got %+v", a, r)
	}
	if c.Access(b, false).Hit != true {
		t.Error("b evicted instead of a")
	}
	// Now a, touch a, insert d: b must go.
	c.Reset()
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // refresh a
	r = c.Access(d, false)
	if !r.Evicted || r.EvictedAddr != b {
		t.Errorf("LRU refresh broken: evicted %#x, want %#x", r.EvictedAddr, b)
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := mustNew(t, smallCfg())
	setStride := uint64(512)
	c.Access(0, true) // write-allocate, dirty
	c.Access(setStride, false)
	r := c.Access(2*setStride, false)
	if !r.Evicted || !r.EvictedDirty || r.EvictedAddr != 0 {
		t.Errorf("dirty victim not reported: %+v", r)
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("Writebacks = %d", c.Stats.Writebacks)
	}
	// Clean victim must not report dirty.
	r = c.Access(3*setStride, false)
	if !r.Evicted || r.EvictedDirty {
		t.Errorf("clean victim misreported: %+v", r)
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := mustNew(t, smallCfg())
	c.Access(0, false) // clean fill
	c.Access(0, true)  // write hit -> dirty
	setStride := uint64(512)
	c.Access(setStride, false)
	r := c.Access(2*setStride, false)
	if !r.EvictedDirty {
		t.Error("write hit did not dirty the line")
	}
}

func TestProbeDoesNotDisturb(t *testing.T) {
	c := mustNew(t, smallCfg())
	c.Access(0x40, false)
	before := c.Stats
	if !c.Probe(0x40) || c.Probe(0x4000) {
		t.Error("Probe wrong")
	}
	if c.Stats != before {
		t.Error("Probe mutated stats")
	}
}

func TestFillAndPrefetchUsefulness(t *testing.T) {
	c := mustNew(t, smallCfg())
	if r := c.Fill(0x80); r.Hit {
		t.Error("fill of absent line reported hit")
	}
	if c.Stats.PrefetchFills != 1 {
		t.Errorf("PrefetchFills = %d", c.Stats.PrefetchFills)
	}
	// Fill again: no-op.
	if r := c.Fill(0x80); !r.Hit {
		t.Error("duplicate fill missed")
	}
	if c.Stats.PrefetchFills != 1 {
		t.Error("duplicate fill recounted")
	}
	// Demand hit consumes the prefetch exactly once.
	r := c.Access(0x80, false)
	if !r.Hit || !r.PrefetchHit {
		t.Errorf("first demand hit on prefetched line: %+v", r)
	}
	r = c.Access(0x80, false)
	if !r.Hit || r.PrefetchHit {
		t.Errorf("second demand hit recounted prefetch: %+v", r)
	}
	if c.Stats.PrefetchUseful != 1 {
		t.Errorf("PrefetchUseful = %d", c.Stats.PrefetchUseful)
	}
}

func TestFillDoesNotCountDemand(t *testing.T) {
	c := mustNew(t, smallCfg())
	c.Fill(0x100)
	if c.Stats.Accesses != 0 || c.Stats.Misses != 0 {
		t.Errorf("Fill counted as demand: %+v", c.Stats)
	}
}

func TestFIFOIgnoresRecency(t *testing.T) {
	cfg := smallCfg()
	cfg.Policy = FIFO
	c := mustNew(t, cfg)
	setStride := uint64(512)
	a, b, d := uint64(0), setStride, 2*setStride
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // refresh a — FIFO must ignore this
	r := c.Access(d, false)
	if !r.Evicted || r.EvictedAddr != a {
		t.Errorf("FIFO evicted %#x, want %#x (first in)", r.EvictedAddr, a)
	}
}

func TestRandomPolicyStaysInSet(t *testing.T) {
	cfg := smallCfg()
	cfg.Policy = Random
	cfg.Seed = 7
	c := mustNew(t, cfg)
	setStride := uint64(512)
	for i := uint64(0); i < 10; i++ {
		r := c.Access(i*setStride, false)
		if r.Evicted && (r.EvictedAddr>>6)&7 != 0 {
			t.Errorf("random policy evicted from wrong set: %#x", r.EvictedAddr)
		}
	}
}

func TestMissRateStreamVsResident(t *testing.T) {
	// Working set fits: after warmup, no misses. Working set 4x cache:
	// LRU streaming misses every time.
	c := mustNew(t, Config{SizeBytes: 4096, Ways: 4, LineSize: 64})
	for pass := 0; pass < 4; pass++ {
		for addr := uint64(0); addr < 2048; addr += 64 {
			c.Access(addr, false)
		}
	}
	if c.Stats.Misses != 32 {
		t.Errorf("resident set missed %d times, want 32 cold", c.Stats.Misses)
	}
	c.Reset()
	for pass := 0; pass < 4; pass++ {
		for addr := uint64(0); addr < 16384; addr += 64 {
			c.Access(addr, false)
		}
	}
	if rate := c.Stats.MissRate(); rate != 1.0 {
		t.Errorf("streaming over 4x capacity miss rate = %v, want 1.0", rate)
	}
}

func TestLRUInclusionProperty(t *testing.T) {
	// Mattson's stack property: for fully-associative LRU, a larger cache
	// never misses more on the same trace.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		traceAddrs := make([]uint64, 2000)
		for i := range traceAddrs {
			traceAddrs[i] = r.Uint64n(256) * 64
		}
		small := mustNew(t, Config{SizeBytes: 8 * 64, Ways: 8, LineSize: 64})
		big := mustNew(t, Config{SizeBytes: 32 * 64, Ways: 32, LineSize: 64})
		for _, a := range traceAddrs {
			small.Access(a, false)
			big.Access(a, false)
		}
		return big.Stats.Misses <= small.Stats.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestVictimAddressReconstruction(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c := mustNew(t, Config{SizeBytes: 2048, Ways: 2, LineSize: 64})
		inserted := make(map[uint64]bool)
		for i := 0; i < 500; i++ {
			addr := r.Uint64n(1<<20) &^ 63
			res := c.Access(addr, false)
			inserted[addr] = true
			if res.Evicted {
				if !inserted[res.EvictedAddr] {
					return false // reconstructed an address never inserted
				}
				// Victim must share the set with the incoming address.
				if (res.EvictedAddr>>6)&15 != (addr>>6)&15 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestResetClears(t *testing.T) {
	c := mustNew(t, smallCfg())
	c.Access(0x40, true)
	c.Reset()
	if c.Stats.Accesses != 0 {
		t.Error("stats survived reset")
	}
	if c.Probe(0x40) {
		t.Error("contents survived reset")
	}
}

func TestStatsHelpers(t *testing.T) {
	s := Stats{Accesses: 10, Misses: 3, PrefetchFills: 4, PrefetchUseful: 2}
	if s.MissRate() != 0.3 {
		t.Errorf("MissRate = %v", s.MissRate())
	}
	if s.PrefetchAccuracy() != 0.5 {
		t.Errorf("PrefetchAccuracy = %v", s.PrefetchAccuracy())
	}
	var zero Stats
	if zero.MissRate() != 0 || zero.PrefetchAccuracy() != 0 {
		t.Error("zero stats not 0")
	}
	var agg Stats
	agg.Add(s)
	agg.Add(s)
	if agg.Accesses != 20 || agg.PrefetchUseful != 4 {
		t.Errorf("Add = %+v", agg)
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "lru" || FIFO.String() != "fifo" || Random.String() != "random" {
		t.Error("policy strings wrong")
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := mustNew(b, Config{SizeBytes: 16384, Ways: 4, LineSize: 128})
	r := rng.New(1)
	addrs := make([]uint64, 1<<14)
	for i := range addrs {
		addrs[i] = r.Uint64n(1 << 22)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&(len(addrs)-1)], false)
	}
}

func TestWriteThroughHit(t *testing.T) {
	cfg := smallCfg()
	cfg.Writes = WriteThroughNoAllocate
	c := mustNew(t, cfg)
	c.Access(0x40, false) // fill clean
	r := c.Access(0x40, true)
	if !r.Hit || !r.WroteThrough {
		t.Errorf("write-through hit = %+v", r)
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1 (immediate propagation)", c.Stats.Writebacks)
	}
	// The line must stay clean: evicting it later reports no dirty victim.
	setStride := uint64(512)
	c.Access(setStride+0x40, false)
	r = c.Access(2*setStride+0x40, false)
	if r.Evicted && r.EvictedDirty {
		t.Error("write-through left a dirty line behind")
	}
}

func TestWriteThroughNoAllocateOnMiss(t *testing.T) {
	cfg := smallCfg()
	cfg.Writes = WriteThroughNoAllocate
	c := mustNew(t, cfg)
	r := c.Access(0x80, true)
	if r.Hit || !r.WroteThrough {
		t.Errorf("write miss = %+v", r)
	}
	if c.Probe(0x80) {
		t.Error("no-allocate policy installed the line")
	}
	// A read after the store still misses (nothing was cached).
	if c.Access(0x80, false).Hit {
		t.Error("read after no-allocate store hit")
	}
}

func TestWriteBackIsDefault(t *testing.T) {
	c := mustNew(t, smallCfg())
	r := c.Access(0x80, true)
	if r.WroteThrough {
		t.Error("default policy wrote through")
	}
	if !c.Probe(0x80) {
		t.Error("write-allocate did not install the line")
	}
}

func TestWritePolicyString(t *testing.T) {
	if WriteBackAllocate.String() != "write-back" || WriteThroughNoAllocate.String() != "write-through" {
		t.Error("write policy strings wrong")
	}
}
