package memsim

import (
	"testing"
	"testing/quick"

	"github.com/uteda/gmap/internal/cache"
	"github.com/uteda/gmap/internal/gpu"
	"github.com/uteda/gmap/internal/prefetch"
	"github.com/uteda/gmap/internal/rng"
	"github.com/uteda/gmap/internal/trace"
	"github.com/uteda/gmap/internal/workloads"
)

// streamWarps builds n warps (one block each) that each stream over their
// own region: every request a distinct line.
func streamWarps(n, reqs int) []trace.WarpTrace {
	warps := make([]trace.WarpTrace, n)
	for w := range warps {
		warps[w].WarpID = w
		warps[w].Block = w
		for j := 0; j < reqs; j++ {
			warps[w].Requests = append(warps[w].Requests, trace.Request{
				PC:   0x100,
				Addr: uint64(w)<<24 | uint64(j*128),
				Kind: trace.Load,
			})
		}
	}
	return warps
}

// loopWarps builds warps that re-access a small resident set repeatedly.
func loopWarps(n, reqs int) []trace.WarpTrace {
	warps := make([]trace.WarpTrace, n)
	for w := range warps {
		warps[w].WarpID = w
		warps[w].Block = w
		for j := 0; j < reqs; j++ {
			warps[w].Requests = append(warps[w].Requests, trace.Request{
				PC:   0x100,
				Addr: uint64(w)<<24 | uint64((j%4)*128),
				Kind: trace.Load,
			})
		}
	}
	return warps
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumCores = 4
	return cfg
}

func TestRunCompletes(t *testing.T) {
	sim, err := New(streamWarps(8, 50), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != 8*50 {
		t.Errorf("Requests = %d, want 400", m.Requests)
	}
	if m.Cycles == 0 {
		t.Error("no cycles elapsed")
	}
}

func TestStreamingMissesEverything(t *testing.T) {
	sim, err := New(streamWarps(4, 100), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.L1MissRate() != 1.0 {
		t.Errorf("streaming L1 miss rate = %v, want 1.0", m.L1MissRate())
	}
}

func TestLoopingHitsAfterWarmup(t *testing.T) {
	sim, err := New(loopWarps(4, 100), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 4 cold misses per warp out of 100 accesses.
	if got := m.L1MissRate(); got > 0.05 {
		t.Errorf("resident-set L1 miss rate = %v, want ~0.04", got)
	}
}

func TestLatencyFeedbackOrdersRuntime(t *testing.T) {
	// The same request count with misses everywhere must take longer than
	// with hits everywhere (latency feedback into the warp queue, §4.5).
	miss, err := New(streamWarps(4, 100), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	mm, err := miss.Run()
	if err != nil {
		t.Fatal(err)
	}
	hit, err := New(loopWarps(4, 100), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	hm, err := hit.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mm.Cycles <= hm.Cycles {
		t.Errorf("miss-heavy run (%d cycles) not slower than hit-heavy (%d)", mm.Cycles, hm.Cycles)
	}
}

func TestBiggerL1FewerMisses(t *testing.T) {
	warps := loopWarps(2, 400)
	// Enlarge the loop set so it doesn't fit a tiny L1.
	for w := range warps {
		for j := range warps[w].Requests {
			warps[w].Requests[j].Addr = uint64(w)<<24 | uint64((j%64)*128)
		}
	}
	run := func(size int) float64 {
		cfg := smallConfig()
		cfg.L1 = cache.Config{SizeBytes: size, Ways: 4, LineSize: 128}
		sim, err := New(warps, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m.L1MissRate()
	}
	small, big := run(4*1024), run(64*1024)
	if big >= small {
		t.Errorf("L1 64KB miss rate (%v) not below 4KB (%v)", big, small)
	}
}

func TestL2SeesOnlyL1Misses(t *testing.T) {
	sim, err := New(loopWarps(4, 100), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.L2.Accesses >= m.L1.Accesses {
		t.Errorf("L2 accesses (%d) not filtered by L1 (%d)", m.L2.Accesses, m.L1.Accesses)
	}
	if m.L2.Accesses < m.L1.Misses {
		t.Errorf("L2 accesses (%d) below L1 misses (%d)", m.L2.Accesses, m.L1.Misses)
	}
}

func TestBlockResidencyWaves(t *testing.T) {
	// 8 blocks, 1 core, 2 resident: must still complete, in waves.
	cfg := smallConfig()
	cfg.NumCores = 1
	cfg.BlocksPerCore = 2
	sim, err := New(streamWarps(8, 20), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != 8*20 {
		t.Errorf("Requests = %d", m.Requests)
	}
}

func TestMSHRBoundStalls(t *testing.T) {
	// Many warps all missing: a tiny MSHR file must record stalls.
	cfg := smallConfig()
	cfg.NumCores = 1
	cfg.MSHRsPerCore = 2
	cfg.BlocksPerCore = 16
	sim, err := New(streamWarps(16, 30), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.MSHRStalls == 0 {
		t.Error("no MSHR stalls with 2 MSHRs and 16 missing warps")
	}
	// And it must still complete all work.
	if m.Requests < 16*30 {
		t.Errorf("Requests = %d, want >= 480", m.Requests)
	}
}

func TestSchedulerPoliciesDiffer(t *testing.T) {
	warps := streamWarps(8, 50)
	run := func(p SchedPolicy, pself float64) Metrics {
		cfg := smallConfig()
		cfg.NumCores = 2
		cfg.Scheduler = p
		cfg.SchedPself = pself
		sim, err := New(warps, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	lrr := run(LRR, 0)
	gto := run(GTO, 0)
	pself := run(PSelf, 0.9)
	// All complete the same work.
	if lrr.Requests != gto.Requests || lrr.Requests != pself.Requests {
		t.Fatalf("request counts differ: %d %d %d", lrr.Requests, gto.Requests, pself.Requests)
	}
	// The policies must produce distinguishable DRAM behaviour on
	// streaming warps (GTO drains one warp's row at a time).
	if lrr.DRAM.RowBufferLocality() == gto.DRAM.RowBufferLocality() &&
		lrr.Cycles == gto.Cycles {
		t.Error("LRR and GTO produced identical behaviour; schedulers not differentiated")
	}
}

func TestGTOFocusesOneWarp(t *testing.T) {
	// With hit-latency-only work (all resident), GTO should drain warps
	// nearly one at a time: its row-buffer locality at DRAM is irrelevant,
	// so check scheduling directly via a tiny two-warp case where requests
	// hit L1 after warmup — we verify it completes and stays deterministic.
	cfg := smallConfig()
	cfg.NumCores = 1
	cfg.Scheduler = GTO
	sim, err := New(loopWarps(2, 50), cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	sim2, _ := New(loopWarps(2, 50), cfg)
	b, _ := sim2.Run()
	if a.Cycles != b.Cycles || a.L1.Hits != b.L1.Hits {
		t.Error("GTO run not deterministic")
	}
}

func TestPSelfDeterministicPerSeed(t *testing.T) {
	cfg := smallConfig()
	cfg.Scheduler = PSelf
	cfg.SchedPself = 0.5
	cfg.Seed = 9
	run := func() Metrics {
		sim, err := New(streamWarps(8, 40), cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.DRAM.RowHits != b.DRAM.RowHits {
		t.Error("PSelf not deterministic for fixed seed")
	}
}

func TestL1PrefetcherReducesMisses(t *testing.T) {
	// Strided streaming: the stride prefetcher should convert misses to
	// prefetch hits.
	warps := streamWarps(4, 200)
	base := smallConfig()
	noPf, err := New(warps, base)
	if err != nil {
		t.Fatal(err)
	}
	m0, err := noPf.Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.NewL1Prefetcher = func() (prefetch.Prefetcher, error) {
		return prefetch.NewStride(prefetch.StrideConfig{TableSize: 64, Degree: 4, MinConfidence: 2, PerWarp: true})
	}
	withPf, err := New(warps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := withPf.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m1.L1MissRate() >= m0.L1MissRate() {
		t.Errorf("prefetcher did not help: %.3f -> %.3f", m0.L1MissRate(), m1.L1MissRate())
	}
	if m1.L1.PrefetchUseful == 0 {
		t.Error("no useful prefetches recorded")
	}
}

func TestL2StreamPrefetcherReducesL2Misses(t *testing.T) {
	warps := streamWarps(4, 300)
	base := smallConfig()
	// Shrink L1 so the L2 sees the stream.
	base.L1 = cache.Config{SizeBytes: 4 * 1024, Ways: 4, LineSize: 128}
	noPf, err := New(warps, base)
	if err != nil {
		t.Fatal(err)
	}
	m0, err := noPf.Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	pf, err := prefetch.NewStream(prefetch.StreamConfig{Streams: 16, Window: 16, Degree: 4, LineSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	cfg.L2Prefetcher = pf
	withPf, err := New(warps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := withPf.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m1.L2MissRate() >= m0.L2MissRate() {
		t.Errorf("stream prefetcher did not help L2: %.3f -> %.3f", m0.L2MissRate(), m1.L2MissRate())
	}
}

func TestEmptyAndInvalidInputs(t *testing.T) {
	if _, err := New(nil, smallConfig()); err == nil {
		t.Error("no warps accepted")
	}
	cfg := smallConfig()
	cfg.NumCores = 0
	if _, err := New(streamWarps(1, 1), cfg); err == nil {
		t.Error("zero cores accepted")
	}
	bad := smallConfig()
	bad.L1.LineSize = 100
	if _, err := New(streamWarps(1, 1), bad); err == nil {
		t.Error("bad L1 config accepted")
	}
}

func TestWarpsWithEmptyStreams(t *testing.T) {
	warps := streamWarps(4, 10)
	warps[2].Requests = nil // a warp with no memory work
	sim, err := New(warps, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != 3*10 {
		t.Errorf("Requests = %d, want 30", m.Requests)
	}
}

func TestSecondaryMissMerging(t *testing.T) {
	// Two warps on one core, same block, hitting the same lines back to
	// back: the second warp's cold miss on an in-flight line must merge.
	warps := make([]trace.WarpTrace, 2)
	for w := range warps {
		warps[w].WarpID = w
		warps[w].Block = 0
		for j := 0; j < 20; j++ {
			warps[w].Requests = append(warps[w].Requests, trace.Request{
				PC: 1, Addr: uint64(j * 128), Kind: trace.Load,
			})
		}
	}
	cfg := smallConfig()
	cfg.NumCores = 1
	sim, err := New(warps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	_ = m
	merges := sim.cores[0].mshr.Merges
	if merges == 0 {
		t.Error("no secondary-miss merges on identical interleaved streams")
	}
}

func TestFullWorkloadThroughSimulator(t *testing.T) {
	s, _ := workloads.ByName("bp")
	tr, err := s.Trace(1)
	if err != nil {
		t.Fatal(err)
	}
	warps := gpu.NewCoalescer(128).BuildWarpTraces(tr)
	sim, err := New(warps, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests == 0 || m.L1.Accesses == 0 {
		t.Fatalf("empty metrics: %+v", m)
	}
	rate := m.L1MissRate()
	if rate <= 0 || rate > 1 {
		t.Errorf("L1 miss rate = %v", rate)
	}
}

func BenchmarkSimulatorBP(b *testing.B) {
	s, _ := workloads.ByName("bp")
	tr, err := s.Trace(1)
	if err != nil {
		b.Fatal(err)
	}
	warps := gpu.NewCoalescer(128).BuildWarpTraces(tr)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim, err := New(warps, DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWriteThroughL1(t *testing.T) {
	// Stores with a write-through/no-allocate L1 never occupy L1 lines and
	// always reach the L2.
	warps := make([]trace.WarpTrace, 1)
	warps[0].WarpID = 0
	warps[0].Block = 0
	for j := 0; j < 50; j++ {
		warps[0].Requests = append(warps[0].Requests, trace.Request{
			PC: 1, Addr: uint64(j * 128), Kind: trace.Store})
	}
	cfg := smallConfig()
	cfg.NumCores = 1
	cfg.L1.Writes = cache.WriteThroughNoAllocate
	sim, err := New(warps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.L1.Writebacks != 50 {
		t.Errorf("L1 writebacks = %d, want 50 write-throughs", m.L1.Writebacks)
	}
	if m.L2.Accesses != 50 {
		t.Errorf("L2 accesses = %d, want every store", m.L2.Accesses)
	}
	// Stores never block the warp on DRAM: the run is short.
	if m.Cycles > 500 {
		t.Errorf("write-through stores blocked the warp: %d cycles", m.Cycles)
	}
}

func TestRequestConservationProperty(t *testing.T) {
	// Every demand request in the input stream is eventually issued,
	// whatever the configuration.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nWarps := int(r.Uint64n(12)) + 1
		warps := make([]trace.WarpTrace, nWarps)
		total := 0
		for w := range warps {
			warps[w].WarpID = w
			warps[w].Block = int(r.Uint64n(4))
			n := int(r.Uint64n(40)) + 1
			for j := 0; j < n; j++ {
				kind := trace.Load
				if r.Bool(0.3) {
					kind = trace.Store
				}
				warps[w].Requests = append(warps[w].Requests, trace.Request{
					PC:   r.Uint64n(8) + 1,
					Addr: r.Uint64n(1 << 22),
					Kind: kind,
				})
				total++
			}
		}
		cfg := DefaultConfig()
		cfg.NumCores = int(r.Uint64n(4)) + 1
		cfg.MSHRsPerCore = int(r.Uint64n(8)) + 1
		cfg.BlocksPerCore = int(r.Uint64n(4)) + 1
		cfg.Scheduler = SchedPolicy(r.Uint64n(3))
		cfg.SchedPself = 0.5
		cfg.Seed = seed
		sim, err := New(warps, cfg)
		if err != nil {
			return false
		}
		m, err := sim.Run()
		if err != nil {
			return false
		}
		return int(m.Requests) == total && m.L1.Accesses == m.Requests
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
