package memsim

import (
	"testing"

	"github.com/uteda/gmap/internal/trace"
)

// launchOf builds one launch of n single-warp blocks touching the given
// base region.
func launchOf(n, reqs int, base uint64) []trace.WarpTrace {
	warps := make([]trace.WarpTrace, n)
	for w := range warps {
		warps[w].WarpID = w
		warps[w].Block = w
		for j := 0; j < reqs; j++ {
			warps[w].Requests = append(warps[w].Requests, trace.Request{
				PC: 0x10, Addr: base + uint64(w)<<16 + uint64(j*128), Kind: trace.Load})
		}
	}
	return warps
}

func TestSequenceRunsAllLaunches(t *testing.T) {
	cfg := smallConfig()
	sim, err := NewSequence([][]trace.WarpTrace{
		launchOf(4, 20, 0x100000),
		launchOf(4, 20, 0x900000),
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != 2*4*20 {
		t.Errorf("Requests = %d, want 160", m.Requests)
	}
}

func TestSequenceEpochOrdering(t *testing.T) {
	// Launch 1 touches the same lines as launch 0. Because launches are
	// serialized with persistent caches, launch 1 must hit everywhere
	// (the working set fits the L2 and per-core L1s are re-fetched from
	// L2, not DRAM): total DRAM reads equal launch 0's cold misses only.
	cfg := smallConfig()
	cfg.NumCores = 1
	first := launchOf(2, 30, 0x100000)
	second := launchOf(2, 30, 0x100000)
	sim, err := NewSequence([][]trace.WarpTrace{first, second}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.DRAM.Reads != 60 {
		t.Errorf("DRAM reads = %d, want 60 (launch 1 must reuse launch 0's lines)", m.DRAM.Reads)
	}
	if m.L2.Misses != 60 {
		t.Errorf("L2 misses = %d, want launch-0 cold only", m.L2.Misses)
	}
}

func TestSequenceSerialization(t *testing.T) {
	// A short launch followed by another short launch must take longer
	// than the two launches' warps run as ONE launch (which overlaps
	// them across cores).
	cfg := smallConfig()
	a := launchOf(4, 40, 0x100000)
	b := launchOf(4, 40, 0x900000)
	seq, err := NewSequence([][]trace.WarpTrace{a, b}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := seq.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Merge into one launch: relabel b's blocks to be distinct.
	merged := append(append([]trace.WarpTrace{}, a...), b...)
	for i := 4; i < 8; i++ {
		merged[i].Block += 4
	}
	one, err := New(merged, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mo, err := one.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ms.Cycles <= mo.Cycles {
		t.Errorf("serialized launches (%d cycles) not slower than merged (%d)", ms.Cycles, mo.Cycles)
	}
}

func TestSequenceEmpty(t *testing.T) {
	if _, err := NewSequence(nil, smallConfig()); err == nil {
		t.Error("empty launch list accepted")
	}
}

func TestSequenceWithBarriers(t *testing.T) {
	// Barriers inside each launch must not leak across launches.
	l0 := barrierWarps(3, 10)
	l1 := barrierWarps(3, 10)
	cfg := smallConfig()
	cfg.NumCores = 1
	sim, err := NewSequence([][]trace.WarpTrace{l0, l1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSequencePerLaunchMetrics(t *testing.T) {
	cfg := smallConfig()
	cfg.NumCores = 1
	first := launchOf(2, 30, 0x100000)
	second := launchOf(2, 30, 0x100000) // same lines: hits in L2
	sim, err := NewSequence([][]trace.WarpTrace{first, second}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.PerLaunch) != 2 {
		t.Fatalf("PerLaunch entries = %d, want 2", len(m.PerLaunch))
	}
	a, b := m.PerLaunch[0], m.PerLaunch[1]
	if a.Requests != 60 || b.Requests != 60 {
		t.Errorf("per-launch requests = %d, %d; want 60 each", a.Requests, b.Requests)
	}
	if a.Requests+b.Requests != m.Requests {
		t.Errorf("launch requests (%d) do not sum to total (%d)", a.Requests+b.Requests, m.Requests)
	}
	if a.L2.Misses == 0 || b.L2.Misses != 0 {
		t.Errorf("launch L2 misses = %d, %d; want cold misses only in launch 0", a.L2.Misses, b.L2.Misses)
	}
	if a.Cycles == 0 || b.Cycles == 0 || a.Cycles+b.Cycles != m.Cycles {
		t.Errorf("launch cycles %d + %d != total %d", a.Cycles, b.Cycles, m.Cycles)
	}
	// Single-launch runs don't carry the breakdown.
	one, _ := New(first, cfg)
	mo, _ := one.Run()
	if len(mo.PerLaunch) != 0 {
		t.Errorf("single launch has PerLaunch = %d entries", len(mo.PerLaunch))
	}
}
