package refmodel

import (
	"reflect"
	"testing"

	"github.com/uteda/gmap/internal/cache"
	"github.com/uteda/gmap/internal/dram"
	"github.com/uteda/gmap/internal/trace"
)

// TestCacheLRUHandComputed drives a 2-way single-set cache through the
// textbook LRU eviction sequence.
func TestCacheLRUHandComputed(t *testing.T) {
	c, err := NewFullyAssocCache(2, 64, cache.WriteBackAllocate)
	if err != nil {
		t.Fatal(err)
	}
	if res := c.Access(0, false); res.Hit || res.Evicted {
		t.Fatalf("cold miss on empty cache: %+v", res)
	}
	if res := c.Access(64, false); res.Hit || res.Evicted {
		t.Fatalf("second cold miss fills free way: %+v", res)
	}
	if res := c.Access(0, false); !res.Hit {
		t.Fatalf("line 0 should hit: %+v", res)
	}
	// LRU is now line 64; a third line must evict it.
	res := c.Access(128, true)
	if res.Hit || !res.Evicted || res.EvictedAddr != 64 || res.EvictedDirty {
		t.Fatalf("expected clean eviction of 64: %+v", res)
	}
	// Line 128 is dirty (write-back); evicting it must report dirty.
	c.Access(0, false)
	res = c.Access(192, false)
	if !res.Evicted || res.EvictedAddr != 128 || !res.EvictedDirty {
		t.Fatalf("expected dirty eviction of 128: %+v", res)
	}
	if c.Stats.Writebacks != 1 || c.Stats.Evictions != 2 || c.Stats.Hits != 2 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

// TestCacheWriteThrough pins the no-allocate store semantics: stores
// never install and count a writeback on both hit and miss.
func TestCacheWriteThrough(t *testing.T) {
	c, err := NewFullyAssocCache(2, 64, cache.WriteThroughNoAllocate)
	if err != nil {
		t.Fatal(err)
	}
	res := c.Access(0, true)
	if res.Hit || !res.WroteThrough {
		t.Fatalf("WT store miss: %+v", res)
	}
	if c.Probe(0) {
		t.Fatal("WT store miss must not allocate")
	}
	c.Access(0, false) // install via load
	res = c.Access(0, true)
	if !res.Hit || !res.WroteThrough {
		t.Fatalf("WT store hit: %+v", res)
	}
	if c.Stats.Writebacks != 2 {
		t.Fatalf("writebacks = %d, want 2", c.Stats.Writebacks)
	}
}

// TestCacheFillDoesNotRefreshRecency pins the subtle production
// behaviour the reference must copy: a Fill that hits leaves the line's
// recency position unchanged.
func TestCacheFillDoesNotRefreshRecency(t *testing.T) {
	c, err := NewFullyAssocCache(2, 64, cache.WriteBackAllocate)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0, false)
	c.Access(64, false)
	// Fill-hit on 0 must NOT make it MRU...
	if res := c.Fill(0); !res.Hit {
		t.Fatal("fill of resident line should report hit")
	}
	// ...so 0 is still the LRU victim.
	res := c.Access(128, false)
	if res.EvictedAddr != 0 {
		t.Fatalf("evicted %d, want 0 (fill must not refresh recency)", res.EvictedAddr)
	}
	if c.Stats.PrefetchFills != 0 {
		t.Fatalf("fill-hit counted as prefetch fill: %+v", c.Stats)
	}
}

// TestDistancesHandComputed checks the quadratic profiler on the classic
// example stream.
func TestDistancesHandComputed(t *testing.T) {
	got := Distances([]uint64{1, 2, 3, 2, 1, 1, 3})
	want := []int64{Cold, Cold, Cold, 1, 2, 0, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Distances = %v, want %v", got, want)
	}
	if out := Distances(nil); len(out) != 0 {
		t.Fatalf("empty stream produced %v", out)
	}
}

// TestCoalesceHandComputed checks first-touch ordering and thread counts.
func TestCoalesceHandComputed(t *testing.T) {
	addrs := []uint64{256, 0, 260, 128, 4}
	got := Coalesce(3, 0x400, trace.Load, addrs, 128)
	want := []trace.Request{
		{PC: 0x400, Addr: 256, Kind: trace.Load, WarpID: 3, Threads: 2},
		{PC: 0x400, Addr: 0, Kind: trace.Load, WarpID: 3, Threads: 2},
		{PC: 0x400, Addr: 128, Kind: trace.Load, WarpID: 3, Threads: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Coalesce = %+v, want %+v", got, want)
	}
	if Coalesce(0, 0, trace.Load, nil, 128) != nil {
		t.Fatal("empty warp must coalesce to nil")
	}
}

// TestFIFODRAMHandComputed walks one bank through the three row-buffer
// outcomes with hand-derived timing.
func TestFIFODRAMHandComputed(t *testing.T) {
	cfg := dram.Config{
		Channels: 1, RanksPerChannel: 1, BanksPerRank: 2,
		RowBytes: 512, TxBytes: 128, BusBytes: 8,
		TRCD: 5, TCAS: 4, TRP: 3, TRAS: 10,
		Sched: dram.FCFS, Mapping: dram.RoBaRaCoCh,
	}
	// RoBaRaCoCh, 1 channel, 1 rank: line -> col (4 cols), bank (2), row.
	// addr 0: bank 0 row 0 col 0. addr 128: bank 0 row 0 col 1 (row hit).
	// addr 1024 (line 8): col 0, bank 0, row 1 (conflict).
	reqs := []DRAMRequest{
		{ID: 0, Addr: 0, Arrival: 0},
		{ID: 1, Addr: 128, Arrival: 0},
		{ID: 2, Addr: 1024, Arrival: 0},
	}
	res, err := RunFIFODRAM(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// burst = 128/(2*8) = 8 cycles.
	// req 0: closed row: dataStart = 0+5+4 = 9, done 17, activatedAt 0.
	// req 1: t = busFree = 17, row hit: dataStart = 17+4 = 21 -> done 29.
	// req 2: t = 29, conflict: pre = max(29, 0+10) = 29, act = 32,
	//        dataStart = 32+5+4 = 41, done 49.
	want := map[uint64]DRAMCompletion{
		0: {Done: 17, RowHit: false},
		1: {Done: 29, RowHit: true},
		2: {Done: 49, RowHit: false},
	}
	if !reflect.DeepEqual(res.Completions, want) {
		t.Fatalf("completions = %+v, want %+v", res.Completions, want)
	}
	if res.RowHits != 1 || res.RowMisses != 1 || res.RowConflicts != 1 {
		t.Fatalf("row outcomes = %d/%d/%d, want 1/1/1", res.RowHits, res.RowMisses, res.RowConflicts)
	}
}

// TestDecomposeAgreesWithProduction differentially checks the
// independent address decomposition against dram.Config.Decompose.
func TestDecomposeAgreesWithProduction(t *testing.T) {
	for _, mapping := range []dram.AddrMapping{dram.RoBaRaCoCh, dram.ChRaBaRoCo} {
		cfg := dram.DefaultGDDR3()
		cfg.Mapping = mapping
		for addr := uint64(0); addr < 1<<22; addr += 12345 {
			want := cfg.Decompose(addr)
			got := decomposeAddr(cfg, addr)
			if got.channel != want.Channel || got.row != want.Row || got.col != want.Col ||
				got.bankIdx != want.Rank*cfg.BanksPerRank+want.Bank {
				t.Fatalf("%v addr %#x: got %+v want %+v", mapping, addr, got, want)
			}
		}
	}
}

// TestHierarchyCountsDRAMTraffic pins the reference hierarchy's
// write-back plumbing on a single-line L1 and L2.
func TestHierarchyCountsDRAMTraffic(t *testing.T) {
	one := cache.Config{SizeBytes: 64, Ways: 1, LineSize: 64}
	h, err := NewHierarchy(one, one, 1)
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0, true)   // L1 miss dirty install; L2 miss install; DRAM write (store miss)
	h.Access(64, false) // evicts dirty 0 -> L2 writeback evicts 0? L2 holds 0; writeback hits...
	if h.DRAMReads == 0 && h.DRAMWrites == 0 {
		t.Fatal("no DRAM traffic counted")
	}
	if got := h.L1.Stats.Accesses; got != 2 {
		t.Fatalf("L1 accesses = %d, want 2", got)
	}
}
