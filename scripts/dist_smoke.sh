#!/usr/bin/env sh
# dist_smoke.sh — chaos smoke test for the distributed sweep engine.
#
# Two phases, both measured against the same serial reference report:
#
#   1. Worker kill: a coordinator with two worker processes loses one
#      to kill -9 mid-epoch. The coordinator must re-lease the dead
#      worker's partition and finish byte-identically to serial.
#
#   2. Coordinator failover: a coordinator with a standby and two
#      addr-file workers is kill -9'd mid-sweep. The standby must take
#      over from the shared ledger (epoch bump fences the corpse), the
#      workers must rediscover it through the addr file, and the
#      standby's rendered report must be byte-identical to serial.
#
# Exercises the deployment path: binaries + HTTP + signals, no test
# harness. Requires only a Go toolchain and curl.
#
# Usage: scripts/dist_smoke.sh [workdir]
# Env:   SMOKE_DEADLINE  per-wait deadline in seconds (default 60)
set -eu

WORK="${1:-$(mktemp -d)}"
BIN="$WORK/bin"
DEADLINE="${SMOKE_DEADLINE:-60}"
mkdir -p "$BIN"

SWEEP_FLAGS="-exp fig6a -benchmarks nn -scale 1 -scale-factor 4 -cores 4 -seed 1"

fail() {
    echo "FAIL: $1" >&2
    exit 1
}

# wait_file PATH WHAT — poll until PATH is non-empty, up to
# $DEADLINE seconds. The deadline is wall-clock, not iteration count,
# so a loaded machine gets the full budget instead of spinning it away.
wait_file() {
    start=$(date +%s)
    while [ ! -s "$1" ]; do
        [ $(($(date +%s) - start)) -lt "$DEADLINE" ] || fail "$2: $1 still empty after ${DEADLINE}s"
        sleep 0.1
    done
}

# read_base PATH — print the coordinator URL from an addr file,
# tolerating both bare host:port and full http:// forms.
read_base() {
    b=$(head -n1 "$1" | tr -d '[:space:]')
    case "$b" in
        http://*|https://*) printf '%s' "$b" ;;
        *) printf 'http://%s' "$b" ;;
    esac
}

# wait_mid_sweep BASE — poll /dist/v1/status until the sweep is
# mid-epoch (some results merged, more to go); leaves DONE/TOTAL set.
wait_mid_sweep() {
    start=$(date +%s)
    while :; do
        curl -sSf "$1/dist/v1/status" >"$WORK/status.json" 2>/dev/null || true
        DONE=$(sed -n 's/.*"done_jobs":[[:space:]]*\([0-9]*\).*/\1/p' "$WORK/status.json" | head -n1)
        TOTAL=$(sed -n 's/.*"total_jobs":[[:space:]]*\([0-9]*\).*/\1/p' "$WORK/status.json" | head -n1)
        if [ -n "$DONE" ] && [ -n "$TOTAL" ] && [ "$DONE" -ge 2 ] && [ "$DONE" -lt "$TOTAL" ]; then
            return 0
        fi
        [ $(($(date +%s) - start)) -lt "$DEADLINE" ] || fail "sweep never reached mid-epoch (done=${DONE:-?} total=${TOTAL:-?})"
        sleep 0.1
    done
}

# wait_exit PID WHAT — wait for PID to exit within $DEADLINE seconds.
wait_exit() {
    start=$(date +%s)
    while kill -0 "$1" 2>/dev/null; do
        [ $(($(date +%s) - start)) -lt "$DEADLINE" ] || fail "$2 (pid $1) never finished"
        sleep 0.5
    done
}

# check_observability BASE COORD_PID — probe the live coordinator's
# health and fleet surfaces: /healthz and /readyz must answer ok,
# /fleet/status must eventually list a live (non-stale) worker, and
# /fleet/metrics must carry worker-labeled samples. The sweep keeps
# running underneath, so the poll fails fast (with the last good
# status body) if the coordinator finishes and exits before a live
# worker ever showed up.
check_observability() {
    curl -sSf "$1/healthz" | grep -q ok || fail "coordinator /healthz did not answer ok"
    curl -sSf "$1/readyz"  | grep -q ok || fail "coordinator /readyz did not answer ok"
    start=$(date +%s)
    while :; do
        if curl -sSf "$1/fleet/status" >"$WORK/fleet.tmp" 2>/dev/null; then
            mv "$WORK/fleet.tmp" "$WORK/fleet.json"
            # The status body is indented JSON: tolerate the space
            # after the colon.
            if grep -q '"stale": *false' "$WORK/fleet.json"; then
                break
            fi
        elif ! kill -0 "$2" 2>/dev/null; then
            fail "coordinator exited before /fleet/status listed a live worker: $(cat "$WORK/fleet.json" 2>/dev/null)"
        fi
        [ $(($(date +%s) - start)) -lt "$DEADLINE" ] || \
            fail "/fleet/status never listed a live worker: $(cat "$WORK/fleet.json" 2>/dev/null)"
        sleep 0.1
    done
    grep -q '"name": *"' "$WORK/fleet.json" || fail "/fleet/status lists no workers"
    curl -sSf "$1/fleet/metrics" >"$WORK/fleet_metrics.txt"
    grep -q '{worker="' "$WORK/fleet_metrics.txt" || \
        fail "/fleet/metrics carries no worker-labeled samples: $(head "$WORK/fleet_metrics.txt")"
    echo "==> observability OK: healthz, readyz, $(grep -c '"stale": *false' "$WORK/fleet.json") live fleet worker(s), labeled metrics"
}

echo "==> building binaries into $BIN"
go build -o "$BIN/gmap-eval" ./cmd/gmap-eval

echo "==> serial reference run"
# shellcheck disable=SC2086 — SWEEP_FLAGS is a flag list by construction
"$BIN/gmap-eval" $SWEEP_FLAGS -no-timings -quiet -out "$WORK/serial.txt"

# ---------------------------------------------------------------- phase 1

ADDR_FILE="$WORK/coord.addr"

echo "==> phase 1: starting coordinator on an ephemeral port"
# shellcheck disable=SC2086
"$BIN/gmap-eval" $SWEEP_FLAGS \
    -dist-listen 127.0.0.1:0 -dist-addr-file "$ADDR_FILE" \
    -dist-parts 4 -dist-lease-ttl 2s -fleet-interval 250ms \
    -checkpoint "$WORK/ledger.jsonl" -out "$WORK/dist.txt" \
    2>"$WORK/coord.log" &
COORD_PID=$!
trap 'kill "$COORD_PID" "$W1_PID" "$W2_PID" "$COORD2_PID" "$STANDBY_PID" "$W3_PID" "$W4_PID" 2>/dev/null || true' EXIT
W1_PID=; W2_PID=; COORD2_PID=; STANDBY_PID=; W3_PID=; W4_PID=

wait_file "$ADDR_FILE" "coordinator never published its address"
BASE=$(read_base "$ADDR_FILE")
echo "==> coordinator is at $BASE"

echo "==> starting two workers (with -serve: they join the fleet)"
"$BIN/gmap-eval" -worker "$BASE" -serve 127.0.0.1:0 -workers 1 -quiet 2>"$WORK/w1.log" &
W1_PID=$!
"$BIN/gmap-eval" -worker "$BASE" -serve 127.0.0.1:0 -workers 1 -quiet 2>"$WORK/w2.log" &
W2_PID=$!

wait_mid_sweep "$BASE"
check_observability "$BASE" "$COORD_PID"
echo "==> mid-epoch ($DONE/$TOTAL jobs merged): kill -9 worker 1 (pid $W1_PID)"
kill -9 "$W1_PID"
wait "$W1_PID" 2>/dev/null || true

echo "==> starting a replacement worker"
"$BIN/gmap-eval" -worker "$BASE" -workers 1 -quiet 2>"$WORK/w1b.log" &
W1_PID=$!

echo "==> waiting for the coordinator to finish and render"
wait_exit "$COORD_PID" "coordinator"
wait "$COORD_PID" || fail "coordinator exited non-zero"

[ -s "$WORK/dist.txt" ] || fail "coordinator wrote no report"
cmp -s "$WORK/dist.txt" "$WORK/serial.txt" || {
    diff -u "$WORK/serial.txt" "$WORK/dist.txt" >&2 || true
    fail "distributed report differs from serial reference"
}

# The dead worker's lease must have been reclaimed (expired or stolen)
# for the sweep to have completed at all; the coordinator's log proves
# the chaos actually happened rather than the kill landing between
# leases.
grep -q "expired\|stealing" "$WORK/coord.log" || \
    fail "no lease was ever reclaimed — the kill hit nothing: $(cat "$WORK/coord.log")"
echo "==> merged ledger: $(wc -l <"$WORK/ledger.jsonl") lines"
echo "==> reclaim evidence: $(grep -c "expired\|stealing" "$WORK/coord.log") coordinator log line(s)"
echo "==> phase 1 PASS: worker kill -9, re-leased and merged byte-identically"

kill "$W1_PID" "$W2_PID" 2>/dev/null || true
W1_PID=; W2_PID=

# ---------------------------------------------------------------- phase 2

ADDR2="$WORK/coord2.addr"

echo "==> phase 2: starting doomed coordinator + standby"
# shellcheck disable=SC2086
"$BIN/gmap-eval" $SWEEP_FLAGS \
    -dist-listen 127.0.0.1:0 -dist-addr-file "$ADDR2" \
    -dist-parts 4 -dist-lease-ttl 2s \
    -checkpoint "$WORK/ledger2.jsonl" -out "$WORK/dist2a.txt" \
    2>"$WORK/coord2.log" &
COORD2_PID=$!

wait_file "$ADDR2" "doomed coordinator never published its address"
BASE2=$(read_base "$ADDR2")
echo "==> active coordinator is at $BASE2"

# shellcheck disable=SC2086
"$BIN/gmap-eval" $SWEEP_FLAGS \
    -dist-standby -worker "$BASE2" \
    -dist-listen 127.0.0.1:0 -dist-addr-file "$ADDR2" \
    -dist-parts 4 -dist-lease-ttl 2s \
    -dist-health-interval 250ms -dist-health-misses 3 \
    -checkpoint "$WORK/ledger2.jsonl" -out "$WORK/dist2.txt" \
    2>"$WORK/standby.log" &
STANDBY_PID=$!

echo "==> starting two addr-file workers"
"$BIN/gmap-eval" -worker-addr-file "$ADDR2" -workers 1 -quiet 2>"$WORK/w3.log" &
W3_PID=$!
"$BIN/gmap-eval" -worker-addr-file "$ADDR2" -workers 1 -quiet 2>"$WORK/w4.log" &
W4_PID=$!

wait_mid_sweep "$BASE2"
echo "==> mid-epoch ($DONE/$TOTAL jobs merged): kill -9 the coordinator (pid $COORD2_PID)"
kill -9 "$COORD2_PID"
wait "$COORD2_PID" 2>/dev/null || true
COORD2_PID=

echo "==> waiting for the standby to take over and finish the sweep"
wait_exit "$STANDBY_PID" "standby"
wait "$STANDBY_PID" || fail "standby exited non-zero: $(cat "$WORK/standby.log")"

[ -s "$WORK/dist2.txt" ] || fail "standby wrote no report"
cmp -s "$WORK/dist2.txt" "$WORK/serial.txt" || {
    diff -u "$WORK/serial.txt" "$WORK/dist2.txt" >&2 || true
    fail "failover report differs from serial reference"
}
grep -q "took over" "$WORK/standby.log" || \
    fail "standby finished without taking over — the kill hit nothing: $(cat "$WORK/standby.log")"
grep -q "epoch 2" "$WORK/standby.log" || \
    fail "takeover did not bump the epoch: $(cat "$WORK/standby.log")"
BASE2B=$(read_base "$ADDR2")
[ "$BASE2B" != "$BASE2" ] || fail "addr file still points at the dead coordinator"
echo "==> takeover rewrote addr file: $BASE2 -> $BASE2B"
echo "==> merged ledger: $(wc -l <"$WORK/ledger2.jsonl") lines"
echo "==> phase 2 PASS: coordinator kill -9, standby took over byte-identically"

echo "PASS: both chaos phases merged byte-identically to serial"
