package core

import (
	"testing"

	"github.com/uteda/gmap/internal/cache"
	"github.com/uteda/gmap/internal/memsim"
	"github.com/uteda/gmap/internal/profiler"
	"github.com/uteda/gmap/internal/synth"
)

func smallSim() memsim.Config {
	cfg := memsim.DefaultConfig()
	cfg.NumCores = 4
	return cfg
}

func prepare(t testing.TB, name string) *Workload {
	t.Helper()
	w, err := Prepare(name, 1, profiler.DefaultConfig(), synth.Options{Seed: 1, ScaleFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPrepareUnknownBenchmark(t *testing.T) {
	if _, err := Prepare("nope", 1, profiler.DefaultConfig(), synth.DefaultOptions()); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestPrepareBuildsEverything(t *testing.T) {
	w := prepare(t, "bp")
	if w.Trace == nil || w.Profile == nil || w.Proxy == nil || len(w.Warps) == 0 {
		t.Fatal("incomplete workload")
	}
	if w.Name != "bp" {
		t.Errorf("Name = %q", w.Name)
	}
}

func TestSimulateBothStreams(t *testing.T) {
	w := prepare(t, "bp")
	orig, err := w.SimulateOriginal(smallSim())
	if err != nil {
		t.Fatal(err)
	}
	prox, err := w.SimulateProxy(smallSim())
	if err != nil {
		t.Fatal(err)
	}
	if orig.Requests == 0 || prox.Requests == 0 {
		t.Fatal("empty simulations")
	}
	// Proxy is miniaturized ~4x.
	ratio := float64(orig.Requests) / float64(prox.Requests)
	if ratio < 2.5 || ratio > 6 {
		t.Errorf("miniaturization ratio = %.2f, want ~4", ratio)
	}
}

func TestCloneAccuracyL1(t *testing.T) {
	// The headline property: proxy L1 miss rate within ~12 percentage
	// points of the original for regular workloads, on the paper's
	// Table 2 system (15 SMs) that the whole evaluation runs on.
	cfg := memsim.DefaultConfig()
	for _, name := range []string{"kmeans", "blk", "scalarprod", "nn", "heartwall", "bp", "lib"} {
		w := prepare(t, name)
		orig, err := w.SimulateOriginal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		prox, err := w.SimulateProxy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		diff := orig.L1MissRate() - prox.L1MissRate()
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.12 {
			t.Errorf("%s: L1 miss rate orig %.3f vs proxy %.3f (|Δ| = %.3f)",
				name, orig.L1MissRate(), prox.L1MissRate(), diff)
		}
	}
}

func TestComparisonMetrics(t *testing.T) {
	c := &Comparison{Benchmark: "x", Metric: "m"}
	c.Add("a", 0.5, 0.55)
	c.Add("b", 0.4, 0.44)
	c.Add("c", 0.3, 0.33)
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	if e := c.MeanAbsPctError(); e < 9.9 || e > 10.1 {
		t.Errorf("MeanAbsPctError = %v, want ~10", e)
	}
	if r := c.Correlation(); r < 0.999 {
		t.Errorf("Correlation = %v, want ~1", r)
	}
}

func TestComparisonFlatSeries(t *testing.T) {
	c := &Comparison{}
	c.Add("a", 0.5, 0.5)
	c.Add("b", 0.5, 0.5)
	if r := c.Correlation(); r != 1 {
		t.Errorf("flat-flat correlation = %v, want 1", r)
	}
	c2 := &Comparison{}
	c2.Add("a", 0.5, 0.1)
	c2.Add("b", 0.5, 0.9)
	if r := c2.Correlation(); r != 0 {
		t.Errorf("flat-vs-trend correlation = %v, want 0", r)
	}
}

func TestCompareSweep(t *testing.T) {
	w := prepare(t, "scalarprod")
	configs := make([]memsim.Config, 0, 3)
	labels := make([]string, 0, 3)
	for _, size := range []int{8 << 10, 32 << 10, 128 << 10} {
		cfg := smallSim()
		cfg.L1 = cache.Config{SizeBytes: size, Ways: 4, LineSize: 128}
		configs = append(configs, cfg)
		labels = append(labels, cfg.L1.String())
	}
	cmp, err := Compare(w, configs, labels, L1MissRate)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Len() != 3 {
		t.Fatalf("Len = %d", cmp.Len())
	}
	if cmp.Metric != "l1-miss-rate" || cmp.Benchmark != "scalarprod" {
		t.Errorf("metadata = %q/%q", cmp.Benchmark, cmp.Metric)
	}
	for i, v := range cmp.Original {
		if v < 0 || v > 1 {
			t.Errorf("original[%d] = %v", i, v)
		}
	}
}

func TestCompareLabelMismatch(t *testing.T) {
	w := prepare(t, "nn")
	if _, err := Compare(w, []memsim.Config{smallSim()}, nil, L1MissRate); err == nil {
		t.Error("label mismatch accepted")
	}
}

func TestMetricAccessors(t *testing.T) {
	var m memsim.Metrics
	m.L1.Accesses, m.L1.Misses = 10, 5
	m.L2.Accesses, m.L2.Misses = 4, 1
	if L1MissRate.Fn(m) != 0.5 || L2MissRate.Fn(m) != 0.25 {
		t.Error("miss-rate metrics wrong")
	}
	for _, metric := range []Metric{DRAMRowBufferLocality, DRAMQueueLen, DRAMReadLatency, DRAMWriteLatency} {
		if metric.Fn(m) != 0 {
			t.Errorf("%s on zero metrics = %v", metric.Name, metric.Fn(m))
		}
	}
}

func TestCompareAppSweep(t *testing.T) {
	w, err := PrepareApp("srad", 1, profiler.DefaultConfig(), synth.Options{Seed: 1, ScaleFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	configs := []memsim.Config{smallSim(), smallSim()}
	configs[1].L1 = cache.Config{SizeBytes: 64 << 10, Ways: 8, LineSize: 128}
	cmp, err := CompareApp(w, configs, []string{"base", "big-l1"}, L1MissRate)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Len() != 2 {
		t.Fatalf("Len = %d", cmp.Len())
	}
	// A bigger L1 must not increase the original's miss rate.
	if cmp.Original[1] > cmp.Original[0]+1e-9 {
		t.Errorf("bigger L1 raised app miss rate: %v", cmp.Original)
	}
	if _, err := CompareApp(w, configs, nil, L1MissRate); err == nil {
		t.Error("label mismatch accepted")
	}
}
