// Package stats provides the statistical primitives G-MAP is built on:
// integer-keyed histograms with weighted sampling, correlation and error
// metrics used for clone validation, and simple descriptive statistics.
package stats

import (
	"fmt"
	"sort"
	"strings"

	"github.com/uteda/gmap/internal/rng"
)

// Histogram is a frequency count over int64 keys. G-MAP uses it for stride
// distributions (keys are signed byte strides) and reuse distance
// distributions (keys are stack distances, with -1 meaning a cold access).
// The zero value is ready to use after a call to methods via pointer, but
// NewHistogram is preferred for clarity.
type Histogram struct {
	counts map[int64]uint64
	total  uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int64]uint64)}
}

// Add increments the count of key by one.
func (h *Histogram) Add(key int64) { h.AddN(key, 1) }

// AddN increments the count of key by n.
func (h *Histogram) AddN(key int64, n uint64) {
	if h.counts == nil {
		h.counts = make(map[int64]uint64)
	}
	h.counts[key] += n
	h.total += n
}

// Count returns the number of observations of key.
func (h *Histogram) Count(key int64) uint64 {
	return h.counts[key]
}

// Total returns the total number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Len returns the number of distinct keys.
func (h *Histogram) Len() int { return len(h.counts) }

// Freq returns the relative frequency of key in [0, 1]. An empty histogram
// reports 0 for every key.
func (h *Histogram) Freq(key int64) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[key]) / float64(h.total)
}

// Keys returns the distinct keys in ascending order.
func (h *Histogram) Keys() []int64 {
	keys := make([]int64, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Mode returns the most frequent key and its relative frequency. Ties are
// broken toward the smaller key so the result is deterministic. ok is false
// for an empty histogram.
func (h *Histogram) Mode() (key int64, freq float64, ok bool) {
	if h.total == 0 {
		return 0, 0, false
	}
	var best int64
	var bestCount uint64
	first := true
	for k, c := range h.counts {
		if first || c > bestCount || (c == bestCount && k < best) {
			best, bestCount, first = k, c, false
		}
	}
	return best, float64(bestCount) / float64(h.total), true
}

// TopK returns up to k (key, frequency) pairs in descending frequency order,
// ties broken toward smaller keys.
func (h *Histogram) TopK(k int) []KeyFreq {
	all := make([]KeyFreq, 0, len(h.counts))
	for key, c := range h.counts {
		all = append(all, KeyFreq{Key: key, Count: c, Freq: float64(c) / float64(max64(h.total, 1))})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Key < all[j].Key
	})
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// KeyFreq is one histogram entry with its absolute count and relative
// frequency.
type KeyFreq struct {
	Key   int64
	Count uint64
	Freq  float64
}

// Mean returns the count-weighted mean of the keys, or 0 for an empty
// histogram. For stride histograms this is the expected drift per step.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for k, c := range h.counts {
		sum += float64(k) * float64(c)
	}
	return sum / float64(h.total)
}

// Contains reports whether key has been observed at least once; this is the
// supp(P) membership test from Algorithm 1 of the paper.
func (h *Histogram) Contains(key int64) bool {
	return h.counts[key] > 0
}

// Clone returns a deep copy of h.
func (h *Histogram) Clone() *Histogram {
	c := NewHistogram()
	for k, v := range h.counts {
		c.counts[k] = v
	}
	c.total = h.total
	return c
}

// Merge adds all observations of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for k, v := range other.counts {
		h.AddN(k, v)
	}
}

// Scale returns a copy of h with every count divided by factor (rounding
// up so non-empty bins stay non-empty). It implements the statistics
// miniaturization step of §4.6: the shape of the distribution is preserved
// while the sample mass shrinks. factor values <= 1 return a plain clone.
func (h *Histogram) Scale(factor float64) *Histogram {
	if factor <= 1 {
		return h.Clone()
	}
	c := NewHistogram()
	for k, v := range h.counts {
		scaled := uint64(float64(v) / factor)
		if scaled == 0 {
			scaled = 1
		}
		c.AddN(k, scaled)
	}
	return c
}

// LogBin returns a copy of h with keys above linearLimit quantized to
// powers of two (preserving sign); keys at or below the limit keep exact
// values. Reuse-distance histograms grow one key per distinct stack depth,
// i.e. with the footprint; log-binning bounds the profile size while
// preserving the distribution's shape at cache-relevant resolution —
// hit/miss outcomes depend on which side of a capacity a distance falls,
// and capacities are themselves powers of two.
func (h *Histogram) LogBin(linearLimit int64) *Histogram {
	if linearLimit < 1 {
		linearLimit = 1
	}
	out := NewHistogram()
	for k, c := range h.counts {
		out.AddN(logBinKey(k, linearLimit), c)
	}
	return out
}

func logBinKey(k, limit int64) int64 {
	neg := k < 0
	a := k
	if neg {
		a = -a
	}
	if a <= limit {
		return k
	}
	bin := int64(1)
	for bin < a {
		bin <<= 1
	}
	if neg {
		return -bin
	}
	return bin
}

// Sampler precomputes cumulative weights for O(log n) weighted sampling
// from a histogram. Building a Sampler snapshots the histogram; later
// histogram mutations are not reflected.
type Sampler struct {
	keys []int64
	cum  []uint64 // cumulative counts, cum[i] = sum of counts[0..i]
}

// NewSampler builds a sampler over h. It returns nil for an empty
// histogram; callers must handle that (an empty distribution means the
// profiled workload never exercised this statistic).
func NewSampler(h *Histogram) *Sampler {
	if h == nil || h.total == 0 {
		return nil
	}
	keys := h.Keys()
	cum := make([]uint64, len(keys))
	var run uint64
	for i, k := range keys {
		run += h.counts[k]
		cum[i] = run
	}
	return &Sampler{keys: keys, cum: cum}
}

// Sample draws one key with probability proportional to its count.
func (s *Sampler) Sample(r *rng.Rand) int64 {
	total := s.cum[len(s.cum)-1]
	x := r.Uint64n(total)
	// Find first index with cum > x.
	i := sort.Search(len(s.cum), func(i int) bool { return s.cum[i] > x })
	return s.keys[i]
}

// Keys returns the sampler's key set in ascending order. The returned slice
// is shared; callers must not modify it.
func (s *Sampler) Keys() []int64 { return s.keys }

// rangeBounds returns the key-index interval [i, j) covering [lo, hi].
func (s *Sampler) rangeBounds(lo, hi int64) (int, int) {
	i := sort.Search(len(s.keys), func(n int) bool { return s.keys[n] >= lo })
	j := sort.Search(len(s.keys), func(n int) bool { return s.keys[n] > hi })
	return i, j
}

// RangeWeight returns the total count mass of keys in [lo, hi].
func (s *Sampler) RangeWeight(lo, hi int64) uint64 {
	if lo > hi {
		return 0
	}
	i, j := s.rangeBounds(lo, hi)
	if i >= j {
		return 0
	}
	var before uint64
	if i > 0 {
		before = s.cum[i-1]
	}
	return s.cum[j-1] - before
}

// SampleRange draws one key from the conditional distribution restricted
// to [lo, hi], with probability proportional to the original counts. ok is
// false when no key lies in the interval.
func (s *Sampler) SampleRange(r *rng.Rand, lo, hi int64) (int64, bool) {
	if lo > hi {
		return 0, false
	}
	i, j := s.rangeBounds(lo, hi)
	if i >= j {
		return 0, false
	}
	var before uint64
	if i > 0 {
		before = s.cum[i-1]
	}
	total := s.cum[j-1] - before
	x := before + r.Uint64n(total)
	idx := sort.Search(len(s.cum), func(n int) bool { return s.cum[n] > x })
	return s.keys[idx], true
}

// SampleRangeExcluding draws from the conditional distribution on
// [lo, hi] with key excl removed (maximal stride runs always end with a
// different stride). It falls back to including excl when nothing else
// has mass in the interval.
func (s *Sampler) SampleRangeExcluding(r *rng.Rand, lo, hi, excl int64) (int64, bool) {
	if lo > hi {
		return 0, false
	}
	wLow := s.RangeWeight(lo, excl-1)
	wHigh := s.RangeWeight(excl+1, hi)
	if wLow+wHigh == 0 {
		return s.SampleRange(r, lo, hi)
	}
	if r.Uint64n(wLow+wHigh) < wLow {
		return s.SampleRange(r, lo, excl-1)
	}
	return s.SampleRange(r, excl+1, hi)
}

// String renders the histogram compactly for debugging, e.g.
// "{-128:0.25 128:0.75}" with keys in ascending order.
func (h *Histogram) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range h.Keys() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%.3f", k, h.Freq(k))
	}
	b.WriteByte('}')
	return b.String()
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
