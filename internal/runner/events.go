package runner

import (
	"fmt"
	"time"
)

// EventKind classifies a finished job.
type EventKind int

// Event kinds.
const (
	// JobDone is a successfully executed job.
	JobDone EventKind = iota
	// JobFailed is a job that returned an error, panicked, or timed out.
	JobFailed
	// JobSkipped is a job whose result was restored from the checkpoint.
	JobSkipped
)

// String returns "done", "failed" or "skipped".
func (k EventKind) String() string {
	switch k {
	case JobFailed:
		return "failed"
	case JobSkipped:
		return "skipped"
	default:
		return "done"
	}
}

// Event is one progress notification, carrying the finished job and a
// snapshot of the run's counters at that moment.
type Event struct {
	Kind    EventKind
	Key     string
	Err     error
	Elapsed time.Duration
	// Attempts is how many times this job executed (0 for skipped jobs,
	// > 1 when transient failures were retried).
	Attempts int
	// Completed, Failed and Skipped count finished jobs so far; Total is
	// the run's job count. Retries counts extra attempts across all jobs
	// so far.
	Completed, Failed, Skipped, Retries, Total int
	// JobsPerSec is the execution rate over executed (non-skipped) jobs.
	JobsPerSec float64
	// ETA estimates the remaining wall time at the current rate (0 until
	// a rate is established).
	ETA time.Duration
}

// Finished returns the number of jobs accounted for so far.
func (e Event) Finished() int { return e.Completed + e.Failed + e.Skipped }

// ProgressLine renders the event as a one-line live status, e.g.
//
//	123/400 jobs  31.8 jobs/s  eta 8s  (2 failed, 40 resumed)
func (e Event) ProgressLine() string {
	s := fmt.Sprintf("%d/%d jobs", e.Finished(), e.Total)
	if e.JobsPerSec > 0 {
		s += fmt.Sprintf("  %.1f jobs/s", e.JobsPerSec)
	}
	if e.ETA > 0 {
		s += fmt.Sprintf("  eta %s", e.ETA.Round(time.Second))
	}
	if e.Failed > 0 || e.Skipped > 0 {
		s += fmt.Sprintf("  (%d failed, %d resumed)", e.Failed, e.Skipped)
	}
	if e.Retries > 0 {
		s += fmt.Sprintf("  (%d retried)", e.Retries)
	}
	return s
}

// Stats is the machine-readable summary of one Run (or, via Add, of a
// sequence of runs).
type Stats struct {
	Total     int `json:"total"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Skipped   int `json:"skipped"`
	// Retries counts job attempts beyond the first across the run: a job
	// that succeeded on its third attempt contributes 2.
	Retries int `json:"retries"`
	// Wall is the pool's wall-clock time; Work is the summed per-job
	// execution time across all workers. Work/Wall approximates the
	// effective parallelism.
	Wall time.Duration `json:"wall_ns"`
	Work time.Duration `json:"work_ns"`
	// JobsPerSec is the executed-job throughput over Wall.
	JobsPerSec float64 `json:"jobs_per_sec"`
	// Workers is the pool size the run resolved to (the largest pool when
	// summaries are merged with Add).
	Workers int `json:"workers"`
	// Utilization is Work / (Wall × Workers): the fraction of the pool's
	// available worker-time spent executing jobs. 1.0 means every worker
	// was busy the whole run; low values signal feed starvation, skew, or
	// a pool larger than the job list.
	Utilization float64 `json:"utilization"`
}

// Add merges two summaries, recomputing the aggregate rate.
func (s Stats) Add(o Stats) Stats {
	out := Stats{
		Total:     s.Total + o.Total,
		Completed: s.Completed + o.Completed,
		Failed:    s.Failed + o.Failed,
		Skipped:   s.Skipped + o.Skipped,
		Retries:   s.Retries + o.Retries,
		Wall:      s.Wall + o.Wall,
		Work:      s.Work + o.Work,
		Workers:   max(s.Workers, o.Workers),
	}
	if out.Wall > 0 {
		out.JobsPerSec = float64(out.Completed+out.Failed) / out.Wall.Seconds()
		if out.Workers > 0 {
			out.Utilization = float64(out.Work) / (float64(out.Wall) * float64(out.Workers))
		}
	}
	return out
}

// tracker accumulates counters and emits events. finish must be called
// serially (Run holds a mutex around it).
type tracker struct {
	start                               time.Time
	total, workers                      int
	onEvent                             func(Event)
	completed, failed, skipped, retries int
	work                                time.Duration
}

func newTracker(total, workers int, onEvent func(Event)) *tracker {
	return &tracker{start: time.Now(), total: total, workers: workers, onEvent: onEvent}
}

func (t *tracker) finish(kind EventKind, key string, err error, elapsed time.Duration, attempts int) {
	switch kind {
	case JobFailed:
		t.failed++
	case JobSkipped:
		t.skipped++
	default:
		t.completed++
	}
	if attempts > 1 {
		t.retries += attempts - 1
	}
	t.work += elapsed
	if t.onEvent == nil {
		return
	}
	e := Event{
		Kind: kind, Key: key, Err: err, Elapsed: elapsed, Attempts: attempts,
		Completed: t.completed, Failed: t.failed, Skipped: t.skipped, Retries: t.retries, Total: t.total,
	}
	executed := t.completed + t.failed
	if wall := time.Since(t.start); wall > 0 && executed > 0 {
		e.JobsPerSec = float64(executed) / wall.Seconds()
		if remaining := t.total - e.Finished(); remaining > 0 {
			e.ETA = time.Duration(float64(remaining) / e.JobsPerSec * float64(time.Second))
		}
	}
	t.onEvent(e)
}

func (t *tracker) stats() Stats {
	s := Stats{
		Total:     t.total,
		Completed: t.completed,
		Failed:    t.failed,
		Skipped:   t.skipped,
		Retries:   t.retries,
		Wall:      time.Since(t.start),
		Work:      t.work,
		Workers:   t.workers,
	}
	if s.Wall > 0 {
		s.JobsPerSec = float64(s.Completed+s.Failed) / s.Wall.Seconds()
		if s.Workers > 0 {
			s.Utilization = float64(s.Work) / (float64(s.Wall) * float64(s.Workers))
		}
	}
	return s
}
