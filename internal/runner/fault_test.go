package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"

	"github.com/uteda/gmap/internal/fault"
	"github.com/uteda/gmap/internal/proptest"
)

// faultSeed returns the schedule seed for fault-injection properties:
// GMAP_FAULT_SEED overrides it so the nightly soak varies schedules and
// a failing one can be replayed exactly.
func faultSeed(t *testing.T) uint64 {
	if v := os.Getenv("GMAP_FAULT_SEED"); v != "" {
		s, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("bad GMAP_FAULT_SEED %q: %v", v, err)
		}
		return s
	}
	return 7
}

func deterministicJobs(n int) []Job[int] {
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job[int]{
			Key: JobKey("fault", fmt.Sprint(i)),
			Run: func(ctx context.Context) (int, error) { return i * 7, nil },
		}
	}
	return jobs
}

// TestCrashMatrixResume is the crash-consistency matrix: a checkpoint cut
// at EVERY byte-offset class — file start, mid-first-line, each line
// boundary and one byte either side of it, and end-of-file — must resume
// to results identical to a fault-free run, with the torn tail truncated
// so the file is append-clean again.
func TestCrashMatrixResume(t *testing.T) {
	const total = 6
	ref := filepath.Join(t.TempDir(), "ref.ckpt")
	want, _, err := Run(context.Background(), Options{Workers: 1, Checkpoint: ref}, deterministicJobs(total))
	if err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Every line boundary, ±1 around each, plus start/mid/end offsets.
	offsets := map[int]bool{0: true, 1: true, len(full): true}
	if len(full) > 2 {
		offsets[len(full)/2] = true
	}
	pos := 0
	for _, line := range bytes.SplitAfter(full, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		offsets[pos+len(line)/2] = true // mid-line tear
		pos += len(line)
		offsets[pos] = true // clean boundary
		if pos-1 > 0 {
			offsets[pos-1] = true // newline torn off
		}
		if pos+1 <= len(full) {
			offsets[pos+1] = true
		}
	}

	for off := range offsets {
		off := off
		t.Run(fmt.Sprintf("cut@%d", off), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.ckpt")
			if err := os.WriteFile(path, full[:off], 0o644); err != nil {
				t.Fatal(err)
			}
			results, st, err := Run(context.Background(),
				Options{Workers: 4, Checkpoint: path, Resume: true}, deterministicJobs(total))
			if err != nil {
				t.Fatalf("resume from cut at %d: %v", off, err)
			}
			if st.Failed != 0 || st.Completed+st.Skipped != total {
				t.Fatalf("stats = %+v", st)
			}
			for i := range results {
				if results[i].Key != want[i].Key || results[i].Value != want[i].Value {
					t.Fatalf("result %d = {%s %d}, fault-free run had {%s %d}",
						i, results[i].Key, results[i].Value, want[i].Key, want[i].Value)
				}
			}
			// The finished checkpoint must be fully parseable with every
			// key present: no torn garbage survived the salvage.
			m, salvage, err := SalvageCheckpoint(nil, path)
			if err != nil {
				t.Fatal(err)
			}
			if len(m) != total || salvage.TornBytes != 0 || salvage.BadLines != 0 {
				t.Fatalf("post-run checkpoint: %d keys, salvage %+v", len(m), salvage)
			}
		})
	}
}

// TestTornTailDoubleResume is the glued-line regression: a torn tail
// without a trailing newline must be truncated on resume — otherwise the
// first entry appended by the resumed run glues onto the garbage, parses
// on the NEXT resume as one corrupt line, and that job's result is
// silently lost again.
func TestTornTailDoubleResume(t *testing.T) {
	const total = 4
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if _, _, err := Run(context.Background(),
		Options{Workers: 1, Checkpoint: path}, deterministicJobs(total-1)); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// First resume executes job 3 and appends it.
	if _, st, err := Run(context.Background(),
		Options{Workers: 1, Checkpoint: path, Resume: true}, deterministicJobs(total)); err != nil || st.Completed != 1 {
		t.Fatalf("first resume: err=%v stats=%+v", err, st)
	}
	// Second resume must see all four entries; with the tail left in
	// place, job 3's line would have merged into the garbage.
	_, st, err := Run(context.Background(),
		Options{Workers: 1, Checkpoint: path, Resume: true}, deterministicJobs(total))
	if err != nil {
		t.Fatal(err)
	}
	if st.Skipped != total || st.Completed != 0 {
		t.Fatalf("second resume stats = %+v, want all %d skipped", st, total)
	}
}

// TestRetryConvergesToFaultFree is the fault-schedule invariance
// property: under a seeded bounded transient-failure schedule, a run
// retrying at least MaxFailures times produces results bit-identical to
// a fault-free run, and the retry counters account exactly for the
// injected failures.
func TestRetryConvergesToFaultFree(t *testing.T) {
	const total = 30
	want, _, err := Run(context.Background(), Options{Workers: 1}, deterministicJobs(total))
	if err != nil {
		t.Fatal(err)
	}
	// Each round is one seeded failure schedule; GMAP_PROPTEST_N raises
	// the round count in the nightly soak, GMAP_FAULT_SEED shifts the
	// whole seed range for replay.
	rounds := proptest.N(t, 2, 8)
	base := faultSeed(t)
	for round := 0; round < rounds; round++ {
		checkRetryConvergence(t, want, base+uint64(round)*7919)
	}
}

func checkRetryConvergence(t *testing.T, want []Result[int], seed uint64) {
	t.Helper()
	total := len(want)
	sched := &fault.Schedule{Seed: seed, FailProb: 0.5, MaxFailures: 3}
	var wantRetries int
	for i := 0; i < total; i++ {
		wantRetries += sched.Failures(JobKey("fault", fmt.Sprint(i)))
	}
	if wantRetries == 0 {
		t.Fatalf("degenerate schedule (seed %d): no failures injected", seed)
	}

	results, st, err := Run(context.Background(), Options{
		Workers: 4,
		Retries: sched.MaxFailures,
		Inject:  sched,
	}, deterministicJobs(total))
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if st.Failed != 0 {
		t.Fatalf("seed %d: %d jobs failed despite full retry budget", seed, st.Failed)
	}
	if st.Retries != wantRetries {
		t.Errorf("seed %d: Stats.Retries = %d, schedule injected %d failures", seed, st.Retries, wantRetries)
	}
	for i := range results {
		if results[i].Key != want[i].Key || results[i].Value != want[i].Value {
			t.Fatalf("seed %d: result %d = {%s %d}, fault-free run had {%s %d}",
				seed, i, results[i].Key, results[i].Value, want[i].Key, want[i].Value)
		}
		if wantA := sched.Failures(results[i].Key) + 1; results[i].Attempts != wantA {
			t.Errorf("seed %d: job %s Attempts = %d, want %d", seed, results[i].Key, results[i].Attempts, wantA)
		}
	}
}

// TestRetryBudgetExhaustion: a job flakier than the retry budget fails
// with its transient error and its attempt count recorded.
func TestRetryBudgetExhaustion(t *testing.T) {
	jobs := []Job[int]{{
		Key: "always-flaky",
		Run: func(ctx context.Context) (int, error) { return 0, fault.Transient(errors.New("still down")) },
	}}
	results, st, err := Run(context.Background(), Options{Workers: 1, Retries: 2}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil || results[0].Attempts != 3 {
		t.Fatalf("result = %+v, want failure after 3 attempts", results[0])
	}
	if st.Failed != 1 || st.Retries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestFatalErrorsAreNotRetried: classification gates the retry loop —
// a fatal (non-transient) failure consumes exactly one attempt.
func TestFatalErrorsAreNotRetried(t *testing.T) {
	var runs atomic.Int32
	jobs := []Job[int]{{
		Key: "fatal",
		Run: func(ctx context.Context) (int, error) {
			runs.Add(1)
			return 0, fault.ErrInjectedENOSPC
		},
	}}
	results, st, err := Run(context.Background(), Options{Workers: 1, Retries: 5}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 || results[0].Attempts != 1 {
		t.Fatalf("fatal error retried: runs=%d attempts=%d", runs.Load(), results[0].Attempts)
	}
	if !errors.Is(results[0].Err, syscall.ENOSPC) {
		t.Fatalf("error lost its identity: %v", results[0].Err)
	}
	if st.Retries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestTransientJobErrorRecovers: a job whose own error (not an injected
// one) classifies transient succeeds on a later attempt and reports its
// attempt count through events.
func TestTransientJobErrorRecovers(t *testing.T) {
	var calls atomic.Int32
	jobs := []Job[int]{{
		Key: "recovers",
		Run: func(ctx context.Context) (int, error) {
			if calls.Add(1) < 3 {
				return 0, fault.Transient(errors.New("warming up"))
			}
			return 42, nil
		},
	}}
	var evAttempts int
	results, _, err := Run(context.Background(), Options{
		Workers: 1,
		Retries: 3,
		OnEvent: func(e Event) {
			if e.Kind == JobDone {
				evAttempts = e.Attempts
			}
		},
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[0].Value != 42 || results[0].Attempts != 3 {
		t.Fatalf("result = %+v", results[0])
	}
	if evAttempts != 3 {
		t.Fatalf("event attempts = %d, want 3", evAttempts)
	}
}

// TestCheckpointAppendErrorAbortsRun: a checkpoint that stops accepting
// writes (injected ENOSPC) must fail the run loudly instead of silently
// executing jobs whose results are never recorded.
func TestCheckpointAppendErrorAbortsRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ifs := &fault.InjectFS{WritePlanFor: func(name string) *fault.WritePlan {
		return fault.NewWritePlan().ErrorAt(10, fault.ErrInjectedENOSPC)
	}}
	_, _, err := Run(context.Background(),
		Options{Workers: 2, Checkpoint: path, FS: ifs}, deterministicJobs(20))
	if err == nil {
		t.Fatal("run with unwritable checkpoint reported success")
	}
	if !errors.Is(err, syscall.ENOSPC) || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("error = %v, want checkpoint ENOSPC", err)
	}
}

// TestCheckpointCrashThenResume: an injected crash point mid-append tears
// the file at an arbitrary byte; a resumed run against the real
// filesystem completes and matches the fault-free results.
func TestCheckpointCrashThenResume(t *testing.T) {
	const total = 8
	want, _, err := Run(context.Background(), Options{Workers: 1}, deterministicJobs(total))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ifs := &fault.InjectFS{WritePlanFor: func(name string) *fault.WritePlan {
		return fault.NewWritePlan().CrashAt(100)
	}}
	if _, _, err := Run(context.Background(),
		Options{Workers: 1, Checkpoint: path, FS: ifs}, deterministicJobs(total)); err == nil {
		t.Fatal("crashed checkpoint stream reported success")
	}
	results, st, err := Run(context.Background(),
		Options{Workers: 2, Checkpoint: path, Resume: true}, deterministicJobs(total))
	if err != nil {
		t.Fatal(err)
	}
	if st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	for i := range results {
		if results[i].Value != want[i].Value {
			t.Fatalf("result %d = %d, want %d", i, results[i].Value, want[i].Value)
		}
	}
}

// TestCompactionAtomicUnderRenameFailure: a failed rename leaves the
// original checkpoint fully intact — compaction is all-or-nothing.
func TestCompactionAtomicUnderRenameFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	w, err := openCheckpoint(nil, path, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := w.append("hot-key", i, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.append("other", -1, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	ifs := &fault.InjectFS{RenameErr: func(o, n string) error { return fault.ErrInjectedEIO }}
	if _, err := CompactCheckpoint(ifs, path); err == nil {
		t.Fatal("compaction with failing rename reported success")
	}
	m, salvage, err := SalvageCheckpoint(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || salvage.Lines != 101 {
		t.Fatalf("failed compaction damaged the original: %d keys, %d lines", len(m), salvage.Lines)
	}
	if _, err := os.Stat(path + ".compact.tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("stale temp file left behind: %v", err)
	}

	// And a fault-free compaction rewrites to one line per key, latest
	// value winning, first-appearance order preserved.
	s, err := CompactCheckpoint(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Compacted {
		t.Fatalf("salvage = %+v", s)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], `"hot-key"`) || !strings.Contains(lines[0], ":99") {
		t.Fatalf("compacted file:\n%s", data)
	}
}

// TestAutoCompactionOnResume: a checkpoint dominated by re-recorded keys
// is compacted automatically when a run resumes from it.
func TestAutoCompactionOnResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	w, err := openCheckpoint(nil, path, false)
	if err != nil {
		t.Fatal(err)
	}
	key0 := JobKey("fault", "0")
	for i := 0; i < 80; i++ {
		// Same key re-recorded 80 times; the last value must win.
		if err := w.append(key0, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	results, st, err := Run(context.Background(),
		Options{Workers: 1, Checkpoint: path, Resume: true}, deterministicJobs(2))
	if err != nil {
		t.Fatal(err)
	}
	if st.Skipped != 1 || st.Completed != 1 || results[0].Value != 0 || results[1].Value != 7 {
		t.Fatalf("stats=%+v results=%+v", st, results)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(strings.Split(strings.TrimSpace(string(data)), "\n")); n != 2 {
		t.Fatalf("resume left %d lines, want 2 (compacted + appended)", n)
	}
}

// TestRetryDelayDeterministic: the backoff (including jitter) is a pure
// function of (base, key, attempt) — no wall-clock or global randomness.
func TestRetryDelayDeterministic(t *testing.T) {
	if d := RetryDelay(0, "k", 1); d != 0 {
		t.Fatalf("zero base must not sleep, got %v", d)
	}
	d1 := RetryDelay(1000, "k", 2)
	if d2 := RetryDelay(1000, "k", 2); d2 != d1 {
		t.Fatalf("same inputs gave %v then %v", d1, d2)
	}
	if d1 < 2000 || d1 > 2500 {
		t.Fatalf("attempt-2 delay %v outside [2×base, 2×base+base/2]", d1)
	}
	if RetryDelay(1000, "k", 2) == RetryDelay(1000, "other-key", 2) &&
		RetryDelay(1000, "k", 3) == RetryDelay(1000, "other-key", 3) {
		t.Error("jitter ignores the job key")
	}
}
