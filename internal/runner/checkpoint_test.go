package runner

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/uteda/gmap/internal/memsim"
	"github.com/uteda/gmap/internal/prefetch"
	"github.com/uteda/gmap/internal/proptest"
)

// countingJobs returns jobs that record how many actually execute.
func countingJobs(n int, executed *atomic.Int32, failIdx int) []Job[int] {
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job[int]{
			Key: JobKey("ckpt", fmt.Sprint(i)),
			Run: func(ctx context.Context) (int, error) {
				executed.Add(1)
				if i == failIdx {
					return 0, errors.New("transient failure")
				}
				return i * 10, nil
			},
		}
	}
	return jobs
}

func TestCheckpointResumeSkipsCompletedJobs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	var executed atomic.Int32

	first, stats1, err := Run(context.Background(),
		Options{Workers: 4, Checkpoint: path}, countingJobs(12, &executed, -1))
	if err != nil {
		t.Fatal(err)
	}
	if executed.Load() != 12 || stats1.Completed != 12 {
		t.Fatalf("first run executed %d, stats %+v", executed.Load(), stats1)
	}

	executed.Store(0)
	second, stats2, err := Run(context.Background(),
		Options{Workers: 4, Checkpoint: path, Resume: true}, countingJobs(12, &executed, -1))
	if err != nil {
		t.Fatal(err)
	}
	if executed.Load() != 0 {
		t.Errorf("resume re-executed %d jobs", executed.Load())
	}
	if stats2.Skipped != 12 || stats2.Completed != 0 {
		t.Errorf("resume stats = %+v", stats2)
	}
	for i := range second {
		if !second[i].Skipped || second[i].Value != first[i].Value {
			t.Errorf("job %d: %+v vs %+v", i, second[i], first[i])
		}
	}
}

func TestCheckpointDoesNotRecordFailures(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	var executed atomic.Int32
	if _, _, err := Run(context.Background(),
		Options{Workers: 2, Checkpoint: path}, countingJobs(6, &executed, 3)); err != nil {
		t.Fatal(err)
	}
	executed.Store(0)
	results, stats, err := Run(context.Background(),
		Options{Workers: 2, Checkpoint: path, Resume: true}, countingJobs(6, &executed, -1))
	if err != nil {
		t.Fatal(err)
	}
	// Only the previously failed job re-runs; this time it succeeds.
	if executed.Load() != 1 {
		t.Errorf("resume executed %d jobs, want 1", executed.Load())
	}
	if stats.Skipped != 5 || stats.Completed != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if results[3].Err != nil || results[3].Value != 30 {
		t.Errorf("retried job = %+v", results[3])
	}
}

func TestCheckpointToleratesTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	var executed atomic.Int32
	if _, _, err := Run(context.Background(),
		Options{Workers: 2, Checkpoint: path}, countingJobs(4, &executed, -1)); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill mid-append: a torn, unparseable trailing line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"deadbeef","val`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	executed.Store(0)
	_, stats, err := Run(context.Background(),
		Options{Workers: 2, Checkpoint: path, Resume: true}, countingJobs(4, &executed, -1))
	if err != nil {
		t.Fatal(err)
	}
	if executed.Load() != 0 || stats.Skipped != 4 {
		t.Errorf("torn line broke resume: executed=%d stats=%+v", executed.Load(), stats)
	}
}

func TestResumeStrictRejectsForeignCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	var executed atomic.Int32
	if _, _, err := Run(context.Background(),
		Options{Workers: 2, Checkpoint: path}, countingJobs(4, &executed, -1)); err != nil {
		t.Fatal(err)
	}

	// A different job universe: zero keys overlap with the checkpoint.
	foreign := make([]Job[int], 3)
	for i := range foreign {
		i := i
		foreign[i] = Job[int]{
			Key: JobKey("other", fmt.Sprint(i)),
			Run: func(ctx context.Context) (int, error) { return i, nil },
		}
	}
	executed.Store(0)
	_, _, err := Run(context.Background(),
		Options{Workers: 2, Checkpoint: path, Resume: true, ResumeStrict: true}, foreign)
	if err == nil {
		t.Fatal("strict resume accepted a checkpoint from a different sweep")
	}
	for _, want := range []string{"resume mismatch", JobKey("ckpt", "0"), JobKey("other", "0")} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestResumeStrictAllowsPartialOverlap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	var executed atomic.Int32
	if _, _, err := Run(context.Background(),
		Options{Workers: 2, Checkpoint: path}, countingJobs(4, &executed, -1)); err != nil {
		t.Fatal(err)
	}

	// Half the keys match the checkpoint, half are new: a legitimately
	// extended sweep must not error, and only new jobs execute.
	jobs := countingJobs(4, &executed, -1)
	for i := 0; i < 2; i++ {
		i := i
		jobs = append(jobs, Job[int]{
			Key: JobKey("extra", fmt.Sprint(i)),
			Run: func(ctx context.Context) (int, error) {
				executed.Add(1)
				return i, nil
			},
		})
	}
	executed.Store(0)
	_, stats, err := Run(context.Background(),
		Options{Workers: 2, Checkpoint: path, Resume: true, ResumeStrict: true}, jobs)
	if err != nil {
		t.Fatalf("strict resume rejected a partially overlapping sweep: %v", err)
	}
	if stats.Skipped != 4 || executed.Load() != 2 {
		t.Errorf("skipped=%d executed=%d, want 4 skipped / 2 executed", stats.Skipped, executed.Load())
	}
}

func TestResumeStrictIgnoresEmptyCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "absent.ckpt")
	var executed atomic.Int32
	_, stats, err := Run(context.Background(),
		Options{Workers: 2, Checkpoint: path, Resume: true, ResumeStrict: true},
		countingJobs(3, &executed, -1))
	if err != nil {
		t.Fatalf("strict resume errored on a fresh run with no checkpoint: %v", err)
	}
	if stats.Completed != 3 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestLoadCheckpointMissingFile(t *testing.T) {
	m, err := LoadCheckpoint(filepath.Join(t.TempDir(), "nope.ckpt"))
	if err != nil || len(m) != 0 {
		t.Errorf("missing file: m=%v err=%v", m, err)
	}
}

func TestResumeWithChangedValueTypeRecomputes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	// Record a string-typed value under a key, then resume with int jobs
	// using the same key: the stale entry must be recomputed, not
	// force-fit.
	w, err := openCheckpoint(nil, path, false)
	if err != nil {
		t.Fatal(err)
	}
	key := JobKey("ckpt", "0")
	if err := w.append(key, "not an int", 0); err != nil {
		t.Fatal(err)
	}
	w.close()

	var executed atomic.Int32
	results, _, err := Run(context.Background(),
		Options{Workers: 1, Checkpoint: path, Resume: true}, countingJobs(1, &executed, -1))
	if err != nil {
		t.Fatal(err)
	}
	if executed.Load() != 1 || results[0].Value != 0 {
		t.Errorf("stale entry not recomputed: executed=%d results=%+v", executed.Load(), results)
	}
}

// faultyPrefetcher panics partway through a simulation — standing in for
// a defect inside one SM worker goroutine of memsim's parallel engine.
type faultyPrefetcher struct{ calls int }

func (p *faultyPrefetcher) Observe(uint64, int, uint64, bool) []uint64 {
	p.calls++
	if p.calls >= 5 {
		panic("injected mid-epoch SM fault")
	}
	return nil
}

func (p *faultyPrefetcher) Reset() {}

// simFigures is the checkpointed reduction of one simulation's metrics —
// exported fields only, like eval's point samples, so the JSON
// round-trip through the checkpoint is exact.
type simFigures struct {
	Cycles     uint64  `json:"cycles"`
	Requests   uint64  `json:"requests"`
	MSHRStalls uint64  `json:"mshr_stalls"`
	L1Miss     float64 `json:"l1_miss"`
	L2Miss     float64 `json:"l2_miss"`
	RBL        float64 `json:"rbl"`
}

func figuresOf(m memsim.Metrics) simFigures {
	return simFigures{
		Cycles:     m.Cycles,
		Requests:   m.Requests,
		MSHRStalls: m.MSHRStalls,
		L1Miss:     m.L1MissRate(),
		L2Miss:     m.L2MissRate(),
		RBL:        m.DRAM.RowBufferLocality(),
	}
}

// TestCheckpointResumeAfterSimWorkerPanic extends the crash matrix to
// the parallel simulation engine: a panic raised mid-epoch inside one SM
// worker goroutine must be contained by the runner's per-job panic
// isolation — failing only that job, never the process, never the
// checkpoint — and a resume afterwards must re-run just the poisoned job
// and reproduce the serial engine's figures bit-identically.
func TestCheckpointResumeAfterSimWorkerPanic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "simpanic.ckpt")
	warps := proptest.New(0xfa17).WarpSet(8, 0.05)
	// The nightly soak rotates the engine width through GMAP_SIM_WORKERS
	// (serial, two workers, more workers than cores); results must be
	// identical at every setting, so the serial reference below is fixed.
	simWorkers := 2
	if v := os.Getenv("GMAP_SIM_WORKERS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("bad GMAP_SIM_WORKERS %q: %v", v, err)
		}
		simWorkers = n
	}
	baseCfg := func(i int) memsim.Config {
		cfg := memsim.DefaultConfig()
		cfg.NumCores = 2
		cfg.Workers = simWorkers
		cfg.Seed = uint64(i)
		return cfg
	}
	simJobs := func(arm *atomic.Bool) []Job[simFigures] {
		jobs := make([]Job[simFigures], 4)
		for i := range jobs {
			i := i
			jobs[i] = Job[simFigures]{
				Key: JobKey("simpanic", fmt.Sprint(i)),
				Run: func(ctx context.Context) (simFigures, error) {
					cfg := baseCfg(i)
					if i == 2 && arm != nil && arm.CompareAndSwap(true, false) {
						cfg.NewL1Prefetcher = func() (prefetch.Prefetcher, error) {
							return &faultyPrefetcher{}, nil
						}
					}
					sim, err := memsim.New(warps, cfg)
					if err != nil {
						return simFigures{}, err
					}
					m, err := sim.Run()
					if err != nil {
						return simFigures{}, err
					}
					return figuresOf(m), nil
				},
			}
		}
		return jobs
	}

	arm := &atomic.Bool{}
	arm.Store(true)
	first, stats1, err := Run(context.Background(),
		Options{Workers: 2, Checkpoint: path}, simJobs(arm))
	if err != nil {
		t.Fatal(err)
	}
	if stats1.Completed != 3 || stats1.Failed != 1 {
		t.Fatalf("first run stats = %+v, want 3 completed / 1 failed", stats1)
	}
	if first[2].Err == nil || !strings.Contains(first[2].Err.Error(), "panicked") {
		t.Fatalf("poisoned job error = %v, want contained panic", first[2].Err)
	}
	// The parallel engine wraps a worker-goroutine panic before rethrowing
	// it on Run's goroutine; the serial engine (GMAP_SIM_WORKERS=1 in the
	// rotation) surfaces the raw fault.
	if simWorkers > 1 && !strings.Contains(first[2].Err.Error(), "SM worker panic") {
		t.Fatalf("poisoned job error = %v, want the SM-worker panic wrapper", first[2].Err)
	}

	// Resume: only the panicked job re-runs, and every figure matches a
	// direct serial-engine run of the same configuration.
	var executed atomic.Int32
	counted := simJobs(nil)
	for i := range counted {
		run := counted[i].Run
		counted[i].Run = func(ctx context.Context) (simFigures, error) {
			executed.Add(1)
			return run(ctx)
		}
	}
	resumed, stats2, err := Run(context.Background(),
		Options{Workers: 2, Checkpoint: path, Resume: true}, counted)
	if err != nil {
		t.Fatal(err)
	}
	if executed.Load() != 1 || stats2.Skipped != 3 || stats2.Completed != 1 {
		t.Fatalf("resume executed %d jobs, stats = %+v; want 1 executed / 3 skipped", executed.Load(), stats2)
	}
	for i := range resumed {
		if resumed[i].Err != nil {
			t.Fatalf("job %d failed after resume: %v", i, resumed[i].Err)
		}
		cfg := baseCfg(i)
		cfg.Workers = 0 // serial reference engine
		sim, err := memsim.New(warps, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		if resumed[i].Value != figuresOf(want) {
			t.Errorf("job %d figures diverge from the serial engine after resume:\n got:  %+v\n want: %+v",
				i, resumed[i].Value, figuresOf(want))
		}
	}
}
