package runner

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func tailAppend(t *testing.T, path, s string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(s); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func tailKeys(es []TailEntry) []string {
	keys := make([]string, len(es))
	for i, e := range es {
		keys[i] = e.Key
	}
	return keys
}

// TestCheckpointTailIncremental: each Poll returns exactly the lines
// completed since the previous one, a torn (newline-less) tail is held
// back until its newline lands, and the offset never advances past it
// early.
func TestCheckpointTailIncremental(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	tl := NewCheckpointTail(nil, path)

	// Missing file: no entries, no error.
	if es, err := tl.Poll(); err != nil || len(es) != 0 {
		t.Fatalf("missing file: Poll = %v, %v", es, err)
	}

	tailAppend(t, path, `{"key":"a","value":{"n":1},"elapsed_ns":5}`+"\n")
	es, err := tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if got := tailKeys(es); len(got) != 1 || got[0] != "a" {
		t.Fatalf("first poll keys = %v", got)
	}
	if es[0].Elapsed != 5*time.Nanosecond || string(es[0].Value) != `{"n":1}` {
		t.Errorf("entry = %+v", es[0])
	}

	// A complete line followed by a torn one: only the complete line is
	// consumed; the torn bytes are re-read once the newline arrives.
	tailAppend(t, path, `{"key":"b","value":{}}`+"\n"+`{"key":"c","value":{}`)
	if got := mustPoll(t, tl); len(got) != 1 || got[0] != "b" {
		t.Fatalf("torn-tail poll keys = %v", got)
	}
	if got := mustPoll(t, tl); len(got) != 0 {
		t.Fatalf("re-poll of torn tail returned %v", got)
	}
	tailAppend(t, path, "}\n")
	if got := mustPoll(t, tl); len(got) != 1 || got[0] != "c" {
		t.Fatalf("completed-tail poll keys = %v", got)
	}

	// A newline-terminated garbage line is counted, not returned, and
	// does not stall the lines after it.
	tailAppend(t, path, "not json\n"+`{"key":"d","value":{}}`+"\n")
	if got := mustPoll(t, tl); len(got) != 1 || got[0] != "d" {
		t.Fatalf("post-garbage poll keys = %v", got)
	}
	if tl.BadLines != 1 {
		t.Errorf("BadLines = %d, want 1", tl.BadLines)
	}
}

// TestCheckpointTailShrinkResets: a file replaced by a shorter one (a
// compaction) resets the tail to offset zero and re-reads from the
// start rather than erroring or skipping.
func TestCheckpointTailShrinkResets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	tl := NewCheckpointTail(nil, path)
	tailAppend(t, path, `{"key":"a","value":{}}`+"\n"+`{"key":"b","value":{}}`+"\n")
	if got := mustPoll(t, tl); len(got) != 2 {
		t.Fatalf("initial poll keys = %v", got)
	}
	if err := os.WriteFile(path, []byte(`{"key":"a","value":{}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := mustPoll(t, tl); len(got) != 1 || got[0] != "a" {
		t.Fatalf("post-shrink poll keys = %v", got)
	}
	if tl.Offset() == 0 {
		t.Error("offset not re-advanced after reset")
	}
}

// TestCheckpointTailMatchesAppender: everything the checkpoint
// appender writes comes back out of the tail byte-identically — the
// value bytes are not re-marshaled in transit.
func TestCheckpointTailMatchesAppender(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	app, err := OpenCheckpointAppender(nil, path, false)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"k1": `{"orig":0.25,"prox":0.24}`,
		"k2": `null`,
	}
	for k, v := range want {
		if err := app.Append(k, json.RawMessage(v), time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	es, err := NewCheckpointTail(nil, path).Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != len(want) {
		t.Fatalf("tailed %d entries, want %d", len(es), len(want))
	}
	for _, e := range es {
		if string(e.Value) != want[e.Key] {
			t.Errorf("%s: value %s, want %s", e.Key, e.Value, want[e.Key])
		}
	}
}

func mustPoll(t *testing.T, tl *CheckpointTail) []string {
	t.Helper()
	es, err := tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	return tailKeys(es)
}
