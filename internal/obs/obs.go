// Package obs is the observability layer of the simulation pipeline: a
// lightweight metrics registry of atomic counters, gauges, bounded
// power-of-two histograms and ring-buffer time-series samplers keyed by
// simulation cycle.
//
// The design constraint is that instrumentation must be safe to leave in
// hot paths permanently. Every handle type (*Counter, *Gauge, *Histogram,
// *Sampler) treats a nil receiver as the no-op implementation, and a nil
// *Registry hands out nil handles — so a disabled instrumentation point
// costs exactly one predictable branch and observability can never
// perturb simulation results (all operations are write-only observers).
//
// Handles are safe for concurrent use: counters, gauges and histograms
// are lock-free atomics; samplers take a short mutex on the (rare) cycles
// they actually retain a point.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The nil Counter
// is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for the nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level (queue depth, occupancy) that also
// tracks its high-water mark. The nil Gauge is a no-op.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set records the current level.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Add moves the level by d and returns nothing; the high-water mark
// follows the new level.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	v := g.v.Add(d)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current level (0 for the nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark (0 for the nil Gauge).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// histBuckets is the fixed bucket count of a Histogram: bucket i holds
// values whose bit length is i, i.e. bucket 0 holds 0, bucket i holds
// [2^(i-1), 2^i). 65 buckets cover the whole uint64 range, so memory is
// bounded regardless of what is observed.
const histBuckets = 65

// Histogram is a bounded power-of-two histogram over uint64 values
// (latencies in ns, depths, sizes). The nil Histogram is a no-op.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Uint64 // valid only when count > 0; initialized to ^0
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(^uint64(0))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
	for {
		m := h.min.Load()
		if v >= m || h.min.CompareAndSwap(m, v) {
			break
		}
	}
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// Count returns the number of observations (0 for the nil Histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns Sum/Count, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// LocalHistogram accumulates observations without atomics, for
// single-goroutine hot loops that would otherwise pay several atomic
// operations per Observe. It uses the same bucket layout as Histogram;
// FlushTo publishes the whole batch into a shared Histogram at once and
// resets the local state. The zero value is ready to use.
type LocalHistogram struct {
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
	buckets [histBuckets]uint64
}

// Observe records one value locally.
func (l *LocalHistogram) Observe(v uint64) {
	if l.count == 0 || v < l.min {
		l.min = v
	}
	if v > l.max {
		l.max = v
	}
	l.count++
	l.sum += v
	l.buckets[bits.Len64(v)]++
}

// Count returns the number of locally accumulated observations.
func (l *LocalHistogram) Count() uint64 { return l.count }

// FlushTo merges the accumulated batch into h and resets l. Flushing an
// empty batch, or flushing into a nil Histogram, is a no-op (the local
// state still resets in the latter case).
func (l *LocalHistogram) FlushTo(h *Histogram) {
	if l.count == 0 {
		return
	}
	if h != nil {
		h.count.Add(l.count)
		h.sum.Add(l.sum)
		for i, n := range l.buckets {
			if n != 0 {
				h.buckets[i].Add(n)
			}
		}
		for {
			m := h.min.Load()
			if l.min >= m || h.min.CompareAndSwap(m, l.min) {
				break
			}
		}
		for {
			m := h.max.Load()
			if l.max <= m || h.max.CompareAndSwap(m, l.max) {
				break
			}
		}
	}
	*l = LocalHistogram{}
}

// Point is one retained time-series sample.
type Point struct {
	Cycle uint64  `json:"cycle"`
	Value float64 `json:"value"`
}

// Sampler retains a bounded, cycle-keyed time series. It starts by
// keeping every offered sample; when the buffer fills it compacts to half
// by dropping every other point and doubles its sampling stride, so an
// arbitrarily long run is always summarized by at most Cap points that
// span the whole cycle range at uniform (power-of-two) resolution.
//
// Offered cycles are expected to be nondecreasing (simulation time); the
// retained series is then sorted by cycle. The nil Sampler is a no-op.
type Sampler struct {
	next   atomic.Uint64 // earliest cycle the next sample is taken at
	mu     sync.Mutex
	stride uint64
	cap    int
	points []Point
}

// DefaultSamplerCap is the retained-point bound used when a Sampler is
// created with capacity <= 0.
const DefaultSamplerCap = 512

func newSampler(capacity int) *Sampler {
	if capacity <= 0 {
		capacity = DefaultSamplerCap
	}
	if capacity < 8 {
		capacity = 8
	}
	return &Sampler{stride: 1, cap: capacity, points: make([]Point, 0, capacity)}
}

// Due reports whether an offer at cycle would be retained — one atomic
// load (false for the nil Sampler). Callers use it to skip computing an
// expensive sample value on the cycles it would be discarded anyway.
func (s *Sampler) Due(cycle uint64) bool {
	return s != nil && cycle >= s.next.Load()
}

// Sample offers one (cycle, value) observation. Most offers return on a
// single atomic load; a sample is retained only when cycle has advanced
// past the sampler's current stride boundary.
func (s *Sampler) Sample(cycle uint64, value float64) {
	if s == nil || cycle < s.next.Load() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cycle < s.next.Load() { // re-check: another goroutine sampled first
		return
	}
	s.points = append(s.points, Point{Cycle: cycle, Value: value})
	if len(s.points) >= s.cap {
		// Keep every other point; double the stride. The retained series
		// still spans the full cycle range.
		half := s.points[:0]
		for i := 0; i < len(s.points); i += 2 {
			half = append(half, s.points[i])
		}
		s.points = half
		s.stride *= 2
	}
	s.next.Store(cycle + s.stride)
}

// Points returns a copy of the retained series (nil for the nil Sampler).
func (s *Sampler) Points() []Point {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// Len returns the retained point count.
func (s *Sampler) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.points)
}

// Cap returns the retained-point bound.
func (s *Sampler) Cap() int {
	if s == nil {
		return 0
	}
	return s.cap
}

// Registry is a named collection of metrics. The nil Registry is the
// disabled implementation: every accessor returns a nil (no-op) handle,
// so components hold their handles unconditionally and pay one branch
// per instrumentation point when observability is off.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	samplers map[string]*Sampler
}

// New returns an enabled, empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		samplers: make(map[string]*Sampler),
	}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// Counter returns the named counter, creating it on first use; nil when
// the registry is disabled.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Sampler returns the named time-series sampler, creating it with the
// given retained-point capacity on first use (capacity <= 0 selects
// DefaultSamplerCap; a later capacity is ignored for an existing name).
func (r *Registry) Sampler(name string, capacity int) *Sampler {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.samplers[name]
	if s == nil {
		s = newSampler(capacity)
		r.samplers[name] = s
	}
	return s
}

// names returns m's keys sorted, for deterministic export.
func names[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
