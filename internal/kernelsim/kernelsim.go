// Package kernelsim is a miniature SIMT kernel emulator. It executes a
// declarative kernel description — global memory operations whose addresses
// are affine functions of the thread index and loop counters, loop nests,
// and thread-predicated branches — for every scalar thread of a launch and
// records the resulting per-thread memory reference streams.
//
// It stands in for the trace-collection front end of the paper (a heavily
// modified CUDA-sim executing real CUDA binaries): G-MAP only ever consumes
// the memory reference stream, and the emulator produces streams with
// exactly the structural properties the paper documents for GPGPU code —
// tid-linear addressing (§4.2), per-PC intra-thread strides and reuse
// (§4.3) and a small set of dominant control paths (§4.4).
package kernelsim

import (
	"fmt"

	"github.com/uteda/gmap/internal/gpu"
	"github.com/uteda/gmap/internal/rng"
	"github.com/uteda/gmap/internal/trace"
)

// AddrExpr computes the byte address of one memory operation for a given
// thread and loop context:
//
//	addr = Base + TidCoef*tid + Σ IterCoef[l]*iter[l] + Const
//
// where iter[l] is the induction variable of the l-th enclosing loop
// (outermost = 0). When Scatter is non-zero the affine address is replaced
// by a deterministic hash of (tid, iters) confined to [Base, Base+Scatter),
// aligned to Align — this models data-dependent/irregular access (the
// hotspot/bfs style patterns for which the paper reports the lowest cloning
// accuracy).
// When Wrap is non-zero the affine offset (everything except Base) is
// reduced modulo Wrap before being added to Base, confining the operation
// to a fixed-size window; this expresses cyclic access to shared tables
// (e.g. k-means cluster centers, AES S-boxes) whose revisits produce the
// high-reuse patterns of §4.3.
type AddrExpr struct {
	Base     uint64
	TidCoef  int64
	IterCoef []int64
	Const    int64
	Wrap     uint64
	Scatter  uint64
	Align    uint64
}

// eval computes the address for a thread and loop-index stack.
func (e AddrExpr) eval(tid int, iters []int, seed uint64) uint64 {
	if e.Scatter != 0 {
		h := rng.Mix64(seed ^ uint64(tid)*0x9e3779b97f4a7c15)
		for _, it := range iters {
			h = rng.Mix64(h ^ uint64(it))
		}
		align := e.Align
		if align == 0 {
			align = 4
		}
		return e.Base + (h%e.Scatter)&^(align-1)
	}
	off := e.TidCoef*int64(tid) + e.Const
	for l, it := range iters {
		if l < len(e.IterCoef) {
			off += e.IterCoef[l] * int64(it)
		}
	}
	if e.Wrap != 0 {
		off %= int64(e.Wrap)
		if off < 0 {
			off += int64(e.Wrap)
		}
	}
	addr := int64(e.Base) + off
	if addr < 0 {
		addr = 0
	}
	return uint64(addr)
}

// Stmt is one statement of a kernel body.
type Stmt interface{ isStmt() }

// MemOp is a global-memory load or store. PC identifies the static
// instruction; it must be unique within a kernel.
type MemOp struct {
	PC   uint64
	Kind trace.Kind
	Addr AddrExpr
}

func (MemOp) isStmt() {}

// Loop executes Body Count times, exposing the induction variable to
// enclosed AddrExprs as the next IterCoef level.
type Loop struct {
	Count int
	Body  []Stmt
}

func (Loop) isStmt() {}

// Barrier is a threadblock-wide bar.sync: every thread of the block must
// reach it before any proceeds. PC identifies the barrier site and must be
// unique like a memory instruction's.
type Barrier struct {
	PC uint64
}

func (Barrier) isStmt() {}

// If executes Then when Pred holds for the thread and Else otherwise,
// modeling control-flow divergence.
type If struct {
	Pred Pred
	Then []Stmt
	Else []Stmt
}

func (If) isStmt() {}

// Pred is a thread predicate.
type Pred interface {
	Holds(tid int, iters []int, seed uint64) bool
}

// TidMod holds for threads with tid % M == R.
type TidMod struct{ M, R int }

// Holds implements Pred.
func (p TidMod) Holds(tid int, _ []int, _ uint64) bool {
	return p.M > 0 && tid%p.M == p.R
}

// TidLess holds for threads with tid < N.
type TidLess struct{ N int }

// Holds implements Pred.
func (p TidLess) Holds(tid int, _ []int, _ uint64) bool { return tid < p.N }

// HashProb holds pseudo-randomly (deterministic in tid and loop indices)
// with probability P; it models data-dependent branches.
type HashProb struct{ P float64 }

// Holds implements Pred.
func (p HashProb) Holds(tid int, iters []int, seed uint64) bool {
	h := rng.Mix64(seed ^ 0xabcdef ^ uint64(tid))
	for _, it := range iters {
		h = rng.Mix64(h ^ uint64(it)*0x100000001b3)
	}
	return float64(h>>11)/(1<<53) < p.P
}

// Kernel is a complete declarative kernel: launch geometry plus body.
type Kernel struct {
	Name   string
	Launch gpu.Launch
	Body   []Stmt
	// Seed drives the deterministic scatter/hash behaviour of irregular
	// expressions and predicates.
	Seed uint64
}

// Validate checks the kernel for structural problems: degenerate launch,
// duplicate PCs, or non-positive loop counts.
func (k *Kernel) Validate() error {
	if err := k.Launch.Validate(); err != nil {
		return fmt.Errorf("kernel %q: %w", k.Name, err)
	}
	pcs := make(map[uint64]bool)
	var walk func(body []Stmt) error
	walk = func(body []Stmt) error {
		for _, s := range body {
			switch st := s.(type) {
			case MemOp:
				if pcs[st.PC] {
					return fmt.Errorf("kernel %q: duplicate PC %#x", k.Name, st.PC)
				}
				pcs[st.PC] = true
			case Barrier:
				if pcs[st.PC] {
					return fmt.Errorf("kernel %q: duplicate PC %#x", k.Name, st.PC)
				}
				pcs[st.PC] = true
			case Loop:
				if st.Count <= 0 {
					return fmt.Errorf("kernel %q: loop with count %d", k.Name, st.Count)
				}
				if err := walk(st.Body); err != nil {
					return err
				}
			case If:
				if err := walk(st.Then); err != nil {
					return err
				}
				if err := walk(st.Else); err != nil {
					return err
				}
			default:
				return fmt.Errorf("kernel %q: unknown statement %T", k.Name, s)
			}
		}
		return nil
	}
	if err := walk(k.Body); err != nil {
		return err
	}
	if len(pcs) == 0 {
		return fmt.Errorf("kernel %q: no memory operations", k.Name)
	}
	return nil
}

// StaticPCs returns the set of static memory-instruction PCs in program
// order.
func (k *Kernel) StaticPCs() []uint64 {
	var pcs []uint64
	var walk func(body []Stmt)
	walk = func(body []Stmt) {
		for _, s := range body {
			switch st := s.(type) {
			case MemOp:
				pcs = append(pcs, st.PC)
			case Barrier:
				pcs = append(pcs, st.PC)
			case Loop:
				walk(st.Body)
			case If:
				walk(st.Then)
				walk(st.Else)
			}
		}
	}
	walk(k.Body)
	return pcs
}

// Emulate runs the kernel for every thread of the launch and returns the
// per-thread reference streams.
func (k *Kernel) Emulate() (*trace.KernelTrace, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	n := k.Launch.NumThreads()
	out := &trace.KernelTrace{
		Name:     k.Name,
		GridDim:  k.Launch.NumBlocks(),
		BlockDim: k.Launch.ThreadsPerBlock(),
		Threads:  make([]trace.ThreadTrace, n),
	}
	iters := make([]int, 0, 8)
	for tid := 0; tid < n; tid++ {
		tt := &out.Threads[tid]
		tt.ThreadID = tid
		tt.Accesses = k.run(k.Body, tid, iters, tt.Accesses)
	}
	return out, nil
}

// run executes body for one thread, appending emitted accesses to acc.
func (k *Kernel) run(body []Stmt, tid int, iters []int, acc []trace.Access) []trace.Access {
	for _, s := range body {
		switch st := s.(type) {
		case MemOp:
			acc = append(acc, trace.Access{
				PC:   st.PC,
				Addr: st.Addr.eval(tid, iters, k.Seed),
				Kind: st.Kind,
			})
		case Barrier:
			acc = append(acc, trace.Access{PC: st.PC, Kind: trace.Sync})
		case Loop:
			iters = append(iters, 0)
			for i := 0; i < st.Count; i++ {
				iters[len(iters)-1] = i
				acc = k.run(st.Body, tid, iters, acc)
			}
			iters = iters[:len(iters)-1]
		case If:
			if st.Pred.Holds(tid, iters, k.Seed) {
				acc = k.run(st.Then, tid, iters, acc)
			} else {
				acc = k.run(st.Else, tid, iters, acc)
			}
		}
	}
	return acc
}
