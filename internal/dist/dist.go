// Package dist shards evaluation sweeps across processes: a coordinator
// partitions the job space by the existing stable job hashes
// (eval.Options.SweepKeys), leases partitions to workers over the serve
// transport (internal/serve), and merges streamed-back results through
// the runner's checkpoint salvage/resume machinery into one ledger that
// a deterministic serial replay turns into the final report.
//
// The correctness contract is byte identity: because results are keyed
// by stable job hashes, every job is deterministic, and the merged
// ledger is replayed serially with NoTimings, a Fig6-8 sweep split
// across N worker processes produces figures and reports byte-identical
// to the serial run — under worker kills, coordinator restarts, torn
// ledger writes, and duplicate or late lease completions. The
// conformance and chaos suites in this package hold that line.
//
// Lease state machine (DESIGN.md §13):
//
//	pending ──lease──▶ leased ──all keys recorded──▶ done
//	   ▲                  │
//	   └──TTL expiry / steal / incomplete-complete──┘
//
// A part (partition of the key space) is leased to at most one live
// worker at a time. Leases expire when the worker misses its heartbeat
// TTL and may be revoked early (stolen) when the worker has not
// delivered a result for stallFactor times the observed mean job time
// while other workers are idle. Results are accepted idempotently from
// any lease, live or revoked: a duplicate with an identical payload is
// counted and dropped, a duplicate with a divergent payload is an error
// naming the key — determinism says that can only mean two different
// job universes were merged. A part completes when every one of its
// keys has a recorded result, no matter which lease delivered them.
package dist

import (
	"encoding/json"
	"hash/fnv"
)

// PartOf maps a job key onto one of parts partitions. It is a pure
// function of the key bytes (FNV-1a), so every process — coordinator,
// workers, a restarted coordinator — computes the same partition for
// the same job without coordination.
func PartOf(key string, parts int) int {
	if parts <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(parts))
}

// Entry is one completed job result in transit: the checkpoint line a
// worker streams to the coordinator. Value carries the exact canonical
// JSON bytes a local checkpoint would have recorded, so merged-ledger
// payload comparison is byte-level. ElapsedNS is advisory — it feeds
// the coordinator's straggler detection, never job identity.
type Entry struct {
	Key       string
	Value     json.RawMessage
	ElapsedNS int64
}
